package eval

import (
	"fmt"
	"strings"
	"time"

	"dwqa/internal/bi"
	"dwqa/internal/core"
	"dwqa/internal/ir"
	"dwqa/internal/qa"
	"dwqa/internal/webcorpus"
)

// Suite runs the experiments of DESIGN.md's per-experiment index. All
// experiments are deterministic given the seed.
type Suite struct {
	Seed int64
}

// NewSuite returns a suite with the canonical seed.
func NewSuite() *Suite { return &Suite{Seed: 42} }

func (s *Suite) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	return cfg
}

// build runs the five steps for a config and returns the pipeline.
func (s *Suite) build(cfg core.Config) (*core.Pipeline, error) {
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.RunAll(); err != nil {
		return nil, err
	}
	return p, nil
}

// airportOf maps a scenario city to one of its airports.
func airportOf(city string) string {
	for _, a := range core.ScenarioAirports {
		if a.City == city {
			return a.Name
		}
	}
	return city
}

// scenarioCities returns the distinct cities of the scenario in roster
// order (two airports may share a city).
func scenarioCities() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range core.ScenarioAirports {
		if !seen[a.City] {
			seen[a.City] = true
			out = append(out, a.City)
		}
	}
	return out
}

// monthName renders a month number.
func monthName(m int) string { return time.Month(m).String() }

// goldDayHigh returns gold for (city, DateRef-like y/m/d).
func goldHigh(c *webcorpus.Corpus, city string, y, m, d int) (float64, bool) {
	return c.GoldHigh(city, y, m, d)
}

// answerCorrect scores an extracted answer against the corpus gold: right
// city, complete date, Celsius value equal to the day's high.
func answerCorrect(c *webcorpus.Corpus, ans *qa.Answer, wantCity string) bool {
	if ans == nil || !ans.HasValue || !strings.EqualFold(ans.Location, wantCity) {
		return false
	}
	if ans.Date.Day == 0 {
		return false
	}
	v := ans.Value
	if ans.Unit == "F" {
		v = (v - 32) / 1.8
	}
	gold, ok := goldHigh(c, wantCity, ans.Date.Year, ans.Date.Month, ans.Date.Day)
	return ok && v > gold-0.05 && v < gold+0.05
}

// Figure1 regenerates the multidimensional model artefact.
func (s *Suite) Figure1() (*Table, error) {
	schema := core.Figure1Schema()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F1",
		Title:  "Multidimensional model of the Last Minute Sales scenario (paper Figure 1)",
		Header: []string{"element", "detail"},
	}
	for _, f := range schema.Facts {
		var ms, ds []string
		for _, m := range f.Measures {
			ms = append(ms, m.Name)
		}
		for _, ref := range f.Dimensions {
			ds = append(ds, ref.Role+"→"+ref.Dimension)
		}
		t.AddRow("fact "+f.Name, "measures: "+strings.Join(ms, ", ")+"; dims: "+strings.Join(ds, ", "))
	}
	for _, d := range schema.Dimensions {
		var levels []string
		for _, l := range d.Levels {
			levels = append(levels, l.Name)
		}
		t.AddRow("dimension "+d.Name, strings.Join(levels, " → "))
	}
	return t, nil
}

// Figure2 regenerates the derived-ontology artefact with merge statistics.
func (s *Suite) Figure2() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F2",
		Title:  "Domain ontology derived from the UML model and merged into WordNet (paper Figure 2, Steps 1-3)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("ontology concepts (Step 1)", p.Ontology.Size())
	t.AddRow("ontology instances fed from the DW (Step 2)", p.Ontology.InstanceCount())
	t.AddRow("lexicon synsets after merge (Step 3)", p.Lexicon.Size())
	t.AddRow("concepts exact-matched in WordNet", p.MergeReport.Count("exact-match"))
	t.AddRow("concepts added under their head word", p.MergeReport.Count("head-match"))
	t.AddRow("concepts starting new trees", p.MergeReport.Count("new-tree"))
	t.AddRow("instances added as new synsets", p.MergeReport.Count("instance-added"))
	t.AddRow("instances already known", p.MergeReport.Count("instance-kept"))
	t.AddRow("synsets enriched with synonyms (the JFK case)", p.MergeReport.Count("synonym-enriched"))
	return t, nil
}

// Figure3 exercises the AliQAn architecture end to end and reports the
// per-phase statistics (paper Figure 3).
func (s *Suite) Figure3() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	question := "What is the weather like in January of 2004 in El Prat?"
	start := time.Now()
	res, err := p.Ask(question)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	t := &Table{
		ID:     "F3",
		Title:  "AliQAn two-phase architecture exercised (paper Figure 3)",
		Header: []string{"stage", "output"},
	}
	t.AddRow("indexation: documents", p.Index.DocCount())
	t.AddRow("indexation: passages (8-sentence windows)", p.Index.PassageCount())
	t.AddRow("module 1: question pattern", res.Analysis.Pattern.Name)
	t.AddRow("module 1: expected answer type", res.Analysis.ExpectedAnswerType())
	t.AddRow("module 2: passages selected", len(res.Passages))
	t.AddRow("module 3: candidates extracted", len(res.Candidates))
	if res.Best != nil {
		t.AddRow("module 3: best answer", res.Best.Render())
	}
	t.AddRow("search latency", elapsed.Round(time.Microsecond).String())
	return t, nil
}

// Table1 regenerates the paper's Table 1 pipeline trace.
func (s *Suite) Table1() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	tr, err := p.Table1("")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "T1",
		Title:  "Output of Step 5 for the paper's query (paper Table 1)",
		Header: []string{"row", "value"},
	}
	t.AddRow("Query", tr.Query)
	t.AddRow("Syntactic-morphologic analysis of the query", tr.QueryAnalysis)
	t.AddRow("Question pattern", tr.QuestionPattern)
	t.AddRow("Expected answer type", tr.ExpectedAnswerType)
	t.AddRow("Main SBs passed to the IR-n passage retrieval system", strings.Join(tr.MainSBs, " "))
	t.AddRow("Passage returned by the IR-n system", strings.ReplaceAll(tr.PassageText, "\n", " / "))
	t.AddRow("Extracted answer", tr.ExtractedAnswer)
	t.Notes = append(t.Notes,
		"the paper extracts (8ºC – Monday, January 31, 2004 – Barcelona) from its live web page; our corpus regenerates the same layout with its own deterministic series")
	return t, nil
}

// harvestMetrics harvests one (city, month) and scores it against gold.
func harvestMetrics(p *core.Pipeline, sys *qa.System, city string, year, month int) (Metrics, error) {
	var m Metrics
	q := fmt.Sprintf("What is the weather like in %s of %d in %s?", monthName(month), year, airportOf(city))
	answers, _, err := sys.Harvest(q)
	if err != nil {
		return m, err
	}
	days := map[int]bool{}
	for _, ans := range answers {
		if !strings.EqualFold(ans.Location, city) || ans.Date.Day == 0 ||
			ans.Date.Month != month || ans.Date.Year != year {
			continue
		}
		v := ans.Value
		if ans.Unit == "F" {
			v = (v - 32) / 1.8
		}
		gold, ok := goldHigh(p.Corpus, city, year, month, ans.Date.Day)
		if ok && v > gold-0.05 && v < gold+0.05 {
			m.TP++
		} else {
			m.FP++
		}
		days[ans.Date.Day] = true
	}
	total := len(p.Corpus.Weather[city][month])
	missing := 0
	for d := 1; d <= total; d++ {
		if !days[d] {
			missing++
		}
	}
	m.FN = missing
	return m, nil
}

// harvester builds a wide-passage QA system over an existing pipeline.
func harvester(p *core.Pipeline) (*qa.System, error) {
	cfg := p.Config.QA
	cfg.TopPassages = p.Config.HarvestPassages
	sys, err := qa.NewSystem(p.Lexicon, p.Ontology, p.Index, cfg)
	if err != nil {
		return nil, err
	}
	sys.TunePatterns(qa.WeatherPatterns()...)
	return sys, nil
}

// pageStyles classifies the corpus weather pages: (city, month) → isTable.
func pageStyles(c *webcorpus.Corpus) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for city, months := range c.Weather {
		out[city] = map[int]bool{}
		for month := range months {
			days := months[month]
			if len(days) == 0 {
				continue
			}
			page := webcorpus.TablePage(days)
			out[city][month] = c.Page(page.URL) != nil
		}
	}
	return out
}

// Figure4 measures extraction on prose pages (the paper's success case).
func (s *Suite) Figure4() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	sys, err := harvester(p)
	if err != nil {
		return nil, err
	}
	styles := pageStyles(p.Corpus)
	t := &Table{
		ID:     "F4",
		Title:  "Extraction from prose weather pages (paper Figure 4: temperatures and dates clearly identified)",
		Header: []string{"city", "month", "precision", "recall", "F1"},
	}
	var total Metrics
	for _, city := range scenarioCities() {
		if _, ok := p.Corpus.Weather[city]; !ok {
			continue
		}
		for _, month := range p.Config.Months {
			if styles[city][month] {
				continue // table pages are Figure 5's subject
			}
			m, err := harvestMetrics(p, sys, city, p.Config.Year, month)
			if err != nil {
				return nil, err
			}
			total.Add(m)
			t.AddRow(city, monthName(month), m.Precision(), m.Recall(), m.F1())
		}
	}
	t.AddRow("TOTAL", "", total.Precision(), total.Recall(), total.F1())
	t.Notes = append(t.Notes, "expected shape: precision near 1.0 — the paper reports its best extraction on this layout")
	return t, nil
}

// Figure5 measures extraction on table pages with the naive extractor and
// with the table-aware extension (paper Figure 5 + §5 future work).
func (s *Suite) Figure5() (*Table, error) {
	t := &Table{
		ID:     "F5",
		Title:  "Extraction from table-form weather pages (paper Figure 5: lower precision; §5 future work: table-aware pre-processing)",
		Header: []string{"extractor", "precision", "recall", "F1"},
	}
	for _, mode := range []struct {
		name       string
		tableAware bool
	}{
		{"naive linearisation (paper's evaluated system)", false},
		{"table-aware pre-processing (paper's future work)", true},
	} {
		cfg := s.config()
		cfg.TableAware = mode.tableAware
		p, err := s.build(cfg)
		if err != nil {
			return nil, err
		}
		sys, err := harvester(p)
		if err != nil {
			return nil, err
		}
		styles := pageStyles(p.Corpus)
		var total Metrics
		for _, city := range scenarioCities() {
			if _, ok := p.Corpus.Weather[city]; !ok {
				continue
			}
			for _, month := range p.Config.Months {
				if !styles[city][month] {
					continue
				}
				m, err := harvestMetrics(p, sys, city, p.Config.Year, month)
				if err != nil {
					return nil, err
				}
				total.Add(m)
			}
		}
		t.AddRow(mode.name, total.Precision(), total.Recall(), total.F1())
	}
	t.Notes = append(t.Notes,
		"expected shape: naive ≪ prose (Figure 4) because the measure↔unit/column association is lost; table-aware recovers most of the gap")
	return t, nil
}

// QAvsIR quantifies §1's three QA/IR differences: answer precision,
// returned text volume (user effort) and latency.
func (s *Suite) QAvsIR() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	type job struct {
		question string
		city     string
	}
	var jobs []job
	styles := pageStyles(p.Corpus)
	for _, city := range scenarioCities() {
		if _, ok := p.Corpus.Weather[city]; !ok {
			continue
		}
		for _, month := range p.Config.Months {
			if styles[city][month] {
				continue
			}
			jobs = append(jobs, job{
				question: fmt.Sprintf("What is the temperature in %s of %d in %s?", monthName(month), p.Config.Year, airportOf(city)),
				city:     city,
			})
		}
	}
	// QA side.
	qaCorrect, qaBytes := 0, 0
	start := time.Now()
	for _, j := range jobs {
		res, err := p.Ask(j.question)
		if err != nil {
			return nil, err
		}
		if res.Best != nil {
			qaBytes += len(res.Best.Render())
			if answerCorrect(p.Corpus, res.Best, j.city) {
				qaCorrect++
			}
		}
	}
	qaTime := time.Since(start)

	// IR side: document retrieval; "correct" when the top document is the
	// right city/month weather page — and even then the user still has to
	// read it.
	irCorrect, irBytes := 0, 0
	start = time.Now()
	for _, j := range jobs {
		docs := p.Index.SearchDocuments(ir.QueryTerms(j.question), 1)
		if len(docs) == 0 {
			continue
		}
		irBytes += len(docs[0].Text)
		if strings.Contains(docs[0].URL, webSlug(j.city)) {
			irCorrect++
		}
	}
	irTime := time.Since(start)

	n := len(jobs)
	t := &Table{
		ID:     "E-QAIR",
		Title:  "QA versus IR on the weather workload (paper §1: precise answers vs documents)",
		Header: []string{"system", "output", "precision@1", "avg bytes returned", "time/query"},
	}
	t.AddRow("QA (AliQAn reproduction)", "precise answer (value–date–city)",
		float64(qaCorrect)/float64(n), qaBytes/n, (qaTime / time.Duration(n)).Round(time.Microsecond).String())
	t.AddRow("IR (document retrieval)", "whole documents",
		float64(irCorrect)/float64(n), irBytes/n, (irTime / time.Duration(n)).Round(time.Microsecond).String())
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d questions; IR precision counts only 'right page on top', after which the user still reads ~%d bytes per query", n, irBytes/max(1, n)),
		"expected shape: QA wins on answer precision and output size; IR is faster per query (pattern matching only)")
	return t, nil
}

func webSlug(city string) string {
	return strings.ReplaceAll(strings.ToLower(city), " ", "-")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OntologyAblation quantifies the Step 2-3 claim: the enriched ontology
// makes the QA system "more precise and more reliable" on entity-ambiguous
// questions.
func (s *Suite) OntologyAblation() (*Table, error) {
	type variant struct {
		name string
		on   bool
	}
	t := &Table{
		ID:     "E-ONTO",
		Title:  "Ontology enrichment ablation (paper §3 Steps 2-3: airports recognised instead of persons or musical groups)",
		Header: []string{"configuration", "questions", "correct", "accuracy"},
	}
	for _, v := range []variant{{"with ontology (Steps 2-4)", true}, {"without ontology (untuned lexicon)", false}} {
		cfg := s.config()
		cfg.QA.UseOntology = v.on
		p, err := s.build(cfg)
		if err != nil {
			return nil, err
		}
		styles := pageStyles(p.Corpus)
		correct, n := 0, 0
		for _, a := range core.ScenarioAirports {
			if _, ok := p.Corpus.Weather[a.City]; !ok {
				continue
			}
			for _, month := range p.Config.Months {
				if styles[a.City][month] {
					continue
				}
				n++
				q := fmt.Sprintf("What is the temperature in %s of %d in %s?", monthName(month), p.Config.Year, a.Name)
				res, err := p.Ask(q)
				if err != nil {
					return nil, err
				}
				if res.Best != nil && answerCorrect(p.Corpus, res.Best, a.City) {
					correct++
				}
			}
		}
		t.AddRow(v.name, n, correct, float64(correct)/float64(max(1, n)))
	}
	t.Notes = append(t.Notes,
		"questions name airports (El Prat, JFK, John Wayne, La Guardia...); without Steps 2-3 the system cannot map them to cities",
		"expected shape: with ≫ without")
	return t, nil
}

// IRFilter quantifies the claim that running IR first "highly decreases"
// analysis time at comparable accuracy.
func (s *Suite) IRFilter() (*Table, error) {
	t := &Table{
		ID:     "E-IRFILTER",
		Title:  "Effect of the IR filtering phase (paper §1: IR runs first, QA works on its output)",
		Header: []string{"configuration", "accuracy", "passages analysed/query", "time/query"},
	}
	for _, v := range []struct {
		name string
		on   bool
	}{
		{"QA over IR-n output (filtered)", true},
		{"QA over the whole collection", false},
	} {
		cfg := s.config()
		cfg.QA.UseIRFilter = v.on
		p, err := s.build(cfg)
		if err != nil {
			return nil, err
		}
		styles := pageStyles(p.Corpus)
		correct, n, passages := 0, 0, 0
		start := time.Now()
		for _, a := range core.ScenarioAirports {
			if _, ok := p.Corpus.Weather[a.City]; !ok {
				continue
			}
			for _, month := range p.Config.Months {
				if styles[a.City][month] {
					continue
				}
				n++
				q := fmt.Sprintf("What is the temperature in %s of %d in %s?", monthName(month), p.Config.Year, a.Name)
				res, err := p.Ask(q)
				if err != nil {
					return nil, err
				}
				passages += len(res.Passages)
				if res.Best != nil && answerCorrect(p.Corpus, res.Best, a.City) {
					correct++
				}
			}
		}
		elapsed := time.Since(start)
		t.AddRow(v.name, float64(correct)/float64(max(1, n)), passages/max(1, n),
			(elapsed / time.Duration(max(1, n))).Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes, "expected shape: filtered is much faster at ≈equal accuracy")
	return t, nil
}

// PassageSize sweeps the IR-n sentence-window size (footnote 6 of the
// paper fixes it at eight). Small windows risk separating the temperature
// line from its date line; large windows dilute passage scores.
func (s *Suite) PassageSize() (*Table, error) {
	t := &Table{
		ID:     "E-PSIZE",
		Title:  "IR-n passage size ablation (paper footnote 6: passages of eight consecutive sentences)",
		Header: []string{"window (sentences)", "passages indexed", "accuracy", "time/query"},
	}
	for _, size := range []int{2, 4, 8, 16} {
		cfg := s.config()
		cfg.PassageSize = size
		p, err := s.build(cfg)
		if err != nil {
			return nil, err
		}
		styles := pageStyles(p.Corpus)
		correct, n := 0, 0
		start := time.Now()
		for _, city := range scenarioCities() {
			if _, ok := p.Corpus.Weather[city]; !ok {
				continue
			}
			for _, month := range p.Config.Months {
				if styles[city][month] {
					continue
				}
				n++
				q := fmt.Sprintf("What is the temperature in %s of %d in %s?", monthName(month), p.Config.Year, airportOf(city))
				res, err := p.Ask(q)
				if err != nil {
					return nil, err
				}
				if res.Best != nil && answerCorrect(p.Corpus, res.Best, city) {
					correct++
				}
			}
		}
		elapsed := time.Since(start)
		t.AddRow(size, p.Index.PassageCount(), float64(correct)/float64(max(1, n)),
			(elapsed / time.Duration(max(1, n))).Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes, "expected shape: accuracy is robust around the paper's window of 8; tiny windows separate values from their date lines")
	return t, nil
}

// Feed runs the full Step 5 + BI analysis (the paper's §4.2 outcome).
func (s *Suite) Feed() (*Table, error) {
	p, err := s.build(s.config())
	if err != nil {
		return nil, err
	}
	rep, err := bi.Analyze(p.Warehouse, bi.DefaultJoinSpec(), bi.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E-FEED",
		Title:  "Step 5 feeding and the sales×weather BI analysis (paper §4.2 and the motivating scenario)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("records normalised", p.LoadReport.Normalized)
	t.AddRow("records loaded into the Weather fact", p.LoadReport.Loaded)
	t.AddRow("records rejected by axioms/validation", len(p.LoadReport.Rejections))
	t.AddRow("weather fact rows", p.Warehouse.FactCount("Weather"))
	t.AddRow("joined (city, day) observations", len(rep.Points))
	t.AddRow("Pearson correlation(tickets, tempC)", rep.Correlation)
	if rep.BestBin != nil {
		t.AddRow("temperature range with peak demand", rep.BestBin.Label())
		t.AddRow("tickets/day in that range", fmt.Sprintf("%.2f", rep.BestBin.TicketsPerDay))
	}
	for _, r := range rep.Recommendations {
		t.Notes = append(t.Notes, r)
	}
	return t, nil
}

// RunAll executes every experiment in DESIGN.md order.
func (s *Suite) RunAll() ([]*Table, error) {
	runs := []func() (*Table, error){
		s.Figure1, s.Figure2, s.Figure3, s.Table1,
		s.Figure4, s.Figure5, s.QAvsIR, s.OntologyAblation, s.IRFilter, s.PassageSize, s.Feed,
	}
	var out []*Table
	for _, run := range runs {
		tbl, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
