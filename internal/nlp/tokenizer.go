package nlp

import (
	"unicode"
	"unicode/utf8"
)

// Tokenize splits text into raw tokens with byte offsets. It keeps decimal
// numbers ("46.4") and hyphenated words together, splits trailing
// punctuation, and separates measurement symbols so that "8ºC" becomes the
// three tokens "8", "º", "C" exactly as the paper's Table 1 analyses it.
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case isDigit(r):
			j := i + size
			seenDot := false
			for j < n {
				r2, s2 := utf8.DecodeRuneInString(text[j:])
				if isDigit(r2) {
					j += s2
					continue
				}
				// Keep a single interior decimal point: "46.4".
				if (r2 == '.' || r2 == ',') && !seenDot && j+s2 < n {
					r3, _ := utf8.DecodeRuneInString(text[j+s2:])
					if isDigit(r3) {
						seenDot = true
						j += s2
						continue
					}
				}
				break
			}
			// Ordinal suffixes: 12th, 1st, 2nd, 3rd stay one token (CD).
			j = absorbOrdinal(text, j)
			toks = append(toks, Token{Text: text[i:j], Start: i, End: j})
			i = j
		case isWordRune(r):
			j := i + size
			for j < n {
				r2, s2 := utf8.DecodeRuneInString(text[j:])
				if isWordRune(r2) {
					j += s2
					continue
				}
				// Interior hyphen or apostrophe between letters stays.
				if (r2 == '-' || r2 == '\'') && j+s2 < n {
					r3, _ := utf8.DecodeRuneInString(text[j+s2:])
					if isWordRune(r3) {
						j += s2
						continue
					}
				}
				break
			}
			toks = append(toks, Token{Text: text[i:j], Start: i, End: j})
			i = j
		default:
			// Punctuation and symbols: one token per rune (º, %, ?, ...).
			toks = append(toks, Token{Text: text[i : i+size], Start: i, End: i + size})
			i += size
		}
	}
	return toks
}

// absorbOrdinal extends a digit run over an English ordinal suffix.
func absorbOrdinal(text string, j int) int {
	for _, suf := range [...]string{"st", "nd", "rd", "th"} {
		if len(text) >= j+len(suf) && text[j:j+len(suf)] == suf {
			// Only when not followed by further letters ("12those" stays split).
			k := j + len(suf)
			if k >= len(text) {
				return k
			}
			r, _ := utf8.DecodeRuneInString(text[k:])
			if !isWordRune(r) {
				return k
			}
		}
	}
	return j
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isWordRune(r rune) bool {
	// The ordinal indicators º/ª are Unicode letters but act as measurement
	// symbols in weather text ("8ºC"); keep them as standalone tokens.
	if r == 'º' || r == 'ª' || r == '°' {
		return false
	}
	return unicode.IsLetter(r) || r == '_'
}
