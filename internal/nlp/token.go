// Package nlp provides the natural-language-processing substrate of the
// AliQAn reproduction: tokenisation, part-of-speech tagging, lemmatisation
// and sentence splitting.
//
// The paper's AliQAn system relies on the external tools Maco+ and
// TreeTagger for morphological analysis. This package replaces them with a
// self-contained lexicon-plus-heuristics analyzer that emits the same
// annotation alphabet the paper prints in Table 1: NP (proper noun),
// NN/NNS (common noun), CD (number), IN/OF (preposition), DT (determiner),
// VBZ and friends (verbs), WP (wh-pronoun) and SENT (sentence punctuation).
package nlp

import "fmt"

// Tag is a Penn-Treebank-style part-of-speech tag restricted to the subset
// used by the paper's trace format plus the closed classes needed to tag
// the evaluation texts.
type Tag string

// The tag inventory. TagOF is split from TagIN because the paper's Table 1
// prints the preposition "of" with its own OF tag.
const (
	TagNP   Tag = "NP"   // proper noun
	TagNN   Tag = "NN"   // common noun, singular
	TagNNS  Tag = "NNS"  // common noun, plural
	TagCD   Tag = "CD"   // cardinal number (incl. ordinals such as "12th")
	TagIN   Tag = "IN"   // preposition
	TagOF   Tag = "OF"   // the preposition "of"
	TagDT   Tag = "DT"   // determiner
	TagJJ   Tag = "JJ"   // adjective
	TagRB   Tag = "RB"   // adverb
	TagVB   Tag = "VB"   // verb, base form
	TagVBZ  Tag = "VBZ"  // verb, 3rd person singular present
	TagVBP  Tag = "VBP"  // verb, non-3rd person present
	TagVBD  Tag = "VBD"  // verb, past tense
	TagVBG  Tag = "VBG"  // verb, gerund
	TagVBN  Tag = "VBN"  // verb, past participle
	TagMD   Tag = "MD"   // modal
	TagTO   Tag = "TO"   // infinitival "to"
	TagWP   Tag = "WP"   // wh-pronoun (what, who, which...)
	TagWRB  Tag = "WRB"  // wh-adverb (when, where, how...)
	TagPRP  Tag = "PRP"  // personal pronoun
	TagPRPS Tag = "PRP$" // possessive pronoun
	TagCC   Tag = "CC"   // coordinating conjunction
	TagEX   Tag = "EX"   // existential "there"
	TagSENT Tag = "SENT" // sentence-final punctuation
	TagPunc Tag = ","    // non-final punctuation (comma, colon, ...)
	TagSYM  Tag = "SYM"  // symbols (%, º, $ ...)
	TagUH   Tag = "UH"   // interjection
)

// IsVerb reports whether the tag denotes a verbal category.
func (t Tag) IsVerb() bool {
	switch t {
	case TagVB, TagVBZ, TagVBP, TagVBD, TagVBG, TagVBN, TagMD:
		return true
	}
	return false
}

// IsNoun reports whether the tag denotes a nominal category (common or
// proper).
func (t Tag) IsNoun() bool {
	switch t {
	case TagNN, TagNNS, TagNP:
		return true
	}
	return false
}

// IsPreposition reports whether the tag is IN or OF.
func (t Tag) IsPreposition() bool { return t == TagIN || t == TagOF }

// IsPunct reports whether the tag is punctuation (final or internal).
func (t Tag) IsPunct() bool { return t == TagSENT || t == TagPunc }

// Token is a single analysed token: surface form, byte offsets into the
// original text, part-of-speech tag and lemma.
type Token struct {
	Text  string // surface form exactly as it appears in the input
	Lemma string // lemma (lower-cased base form)
	Tag   Tag    // part-of-speech tag
	Start int    // byte offset of the first byte in the input
	End   int    // byte offset one past the last byte
}

// String renders the token in the paper's trace format:
// "Term Lexical_type Lemma", e.g. "January NP january".
func (t Token) String() string {
	return fmt.Sprintf("%s %s %s", t.Text, t.Tag, t.Lemma)
}

// IsContentWord reports whether the token belongs to an open class that
// carries meaning for retrieval (nouns, verbs other than auxiliaries,
// adjectives, adverbs, numbers).
func (t Token) IsContentWord() bool {
	switch t.Tag {
	case TagNN, TagNNS, TagNP, TagCD, TagJJ, TagRB,
		TagVB, TagVBZ, TagVBP, TagVBD, TagVBG, TagVBN:
		return t.Lemma != "be" && t.Lemma != "have" && t.Lemma != "do"
	}
	return false
}
