package engine_test

import (
	"context"
	"errors"
	"testing"

	"dwqa/internal/engine"
	"dwqa/internal/qa"
)

// BenchmarkAskShedding measures the rejection fast path: the single
// inflight slot is held by a blocked request, there is no wait queue, and
// every Ask must be turned away immediately with ErrShed. ns/op is the
// cost of saying no under overload — the latency floor of the HTTP 429
// path, which must stay trivially cheap so an overloaded engine spends
// its cycles on admitted work, not on rejections.
func BenchmarkAskShedding(b *testing.B) {
	p := newPipeline(b)
	eng, err := engine.New(engine.Config{
		MaxInflight: 1, MaxQueue: -1, AskTimeout: -1, CacheSize: -1,
	}, p.QA, nil, nil, p.Index)
	if err != nil {
		b.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.SetAnswerFnForTest(blockingAnswer(started, release))
	done := make(chan struct{})
	go func() {
		eng.Ask(context.Background(), "occupier")
		close(done)
	}()
	<-started

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := eng.Ask(context.Background(), "overload probe"); !errors.Is(r.Err, engine.ErrShed) {
			b.Fatalf("want ErrShed while saturated, got %v", r.Err)
		}
	}
	b.StopTimer()
	close(release)
	<-done
}

// BenchmarkAskAdmission isolates the per-request cost of the resilience
// plumbing — gate acquire/release, deadline context construction, expiry
// bookkeeping — by running the same trivial answer function with the
// serving limits on (defaults) and off (library mode). The delta between
// the two arms is the admission overhead PERF.md's ≤5% cold-path budget
// refers to; on the cold path that delta is buried under milliseconds of
// question analysis and retrieval.
func BenchmarkAskAdmission(b *testing.B) {
	p := newPipeline(b)
	instant := func(string) (*qa.Result, error) { return &qa.Result{}, nil }
	for _, bm := range []struct {
		name string
		cfg  engine.Config
	}{
		{"limits-on", engine.Config{CacheSize: -1}},
		{"limits-off", engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1}},
	} {
		b.Run(bm.name, func(b *testing.B) {
			eng, err := engine.New(bm.cfg, p.QA, nil, nil, p.Index)
			if err != nil {
				b.Fatal(err)
			}
			eng.SetAnswerFnForTest(instant)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := eng.Ask(context.Background(), "probe"); r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		})
	}
}
