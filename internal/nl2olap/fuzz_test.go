package nl2olap_test

import (
	"errors"
	"testing"

	"dwqa/internal/nl2olap"
)

// FuzzTranslate drives the NL→OLAP translator with arbitrary question
// text. The contract under fuzzing:
//
//   - no input may panic;
//   - every non-error translation passes the warehouse's own query
//     validation and executes — the translator never emits a plan
//     Execute would reject;
//   - translation is deterministic: the same input always compiles to
//     the same plan;
//   - rejected questions are classified: either factoid (ErrFactoid) or
//     a descriptive analytic error, never both.
func FuzzTranslate(f *testing.F) {
	for _, s := range []string{
		"What is the average temperature in Barcelona by month?",
		"Total last-minute revenue per destination city in January",
		"How many tickets were sold to Barcelona in January of 2004?",
		"What is the maximum temperature in El Prat in February of 2004?",
		"Average price by destination country and month",
		"How many sales from Madrid to New York in 2004?",
		"Number of flights per departure airport",
		"Average fare for each customer segment",
		"count of weather observations by city",
		"Total revenue",
		"average temperature in Gotham by month",
		"average sales by month",
		"What is the weather like in January of 2004 in El Prat?",
		"Who is the mayor of New York?",
		"how many",
		"total",
		"by",
		"per per per",
		"average temperature by",
		"Total revenue in January of 2004 in February of 2005",
		"",
		"?",
		"average temperature in \xff\xfe by month",
		"count of sales by city and and month",
		"AVERAGE TEMPERATURE IN BARCELONA BY MONTH",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, question string) {
		tr, wh := fixture(t)
		res, err := tr.Translate(question)
		if err != nil {
			if res != nil {
				t.Fatal("error with a non-nil translation")
			}
			return // rejections are fine; panics and invalid plans are not
		}
		if err := wh.Validate(res.Query); err != nil {
			t.Fatalf("translation of %q failed warehouse validation: %v\nplan: %s",
				question, err, res.PlanString())
		}
		if _, err := wh.Execute(res.Query); err != nil {
			t.Fatalf("translation of %q failed to execute: %v\nplan: %s",
				question, err, res.PlanString())
		}
		again, err := tr.Translate(question)
		if err != nil {
			t.Fatalf("second translation of %q failed: %v", question, err)
		}
		if again.PlanString() != res.PlanString() {
			t.Fatalf("translation of %q is nondeterministic:\n  %s\n  %s",
				question, res.PlanString(), again.PlanString())
		}
		if errors.Is(err, nl2olap.ErrFactoid) {
			t.Fatal("successful translation classified factoid")
		}
	})
}
