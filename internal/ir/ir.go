// Package ir implements the passage retrieval substrate of the
// reproduction, modelled on the IR-n system (reference [9] of the paper)
// that AliQAn uses to filter the quantity of text the QA process analyses.
//
// IR-n's defining property is reproduced: documents are split into
// passages formed by a fixed number of consecutive sentences (the paper's
// footnote 6: "the IR-n system ... returns the most relevant passage
// formed by eight consecutive sentences"), windows overlap, and passages
// are ranked by query-term weights. A document-level retrieval mode serves
// as the classical-IR baseline for the QA-vs-IR experiment: it returns
// whole documents, which is exactly the shortcoming the paper attributes
// to IR systems.
//
// Retrieval cost scales with the matched postings, not the index size:
// terms are interned into a dense dictionary (lemma → int32 term id,
// append-only — an id, once assigned, is never reused or remapped), the
// posting lists are slices indexed by term id, and query scores
// accumulate in pooled epoch-stamped sparse accumulators (sparse.go).
// SearchReference / SearchDocumentsReference retain the previous dense
// O(index)-per-query engines as the correctness oracle and the baseline
// the scaling benchmarks measure against.
package ir

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dwqa/internal/nlp"
)

// DefaultPassageSize is the number of consecutive sentences per passage.
const DefaultPassageSize = 8

// Document is an indexable unit of text with provenance. Ord is the
// document's global ordinal in a sharded deployment: the position it held
// in the corpus-wide ingest order before routing scattered documents
// across per-shard indexes. Cross-shard result merging tie-breaks on it
// to reproduce the single-index insertion order exactly. Single-index
// deployments leave it zero (ties then fall back to local order, which
// IS the global order).
type Document struct {
	URL  string
	Text string
	Ord  int64
}

// Passage is a retrieval result: a window of consecutive sentences from
// one document.
type Passage struct {
	DocURL    string
	DocIndex  int
	DocOrd    int64 // the document's global ordinal (Document.Ord)
	SentStart int   // first sentence index in the document
	SentEnd   int   // one past the last sentence index
	Text      string
	Score     float64
	Sentences []nlp.Sentence // analysed sentences of the window
}

// DocResult is a document-level retrieval result (the IR baseline mode).
type DocResult struct {
	URL      string
	DocIndex int
	Score    float64
	Text     string
}

// Posting records one passage (or document, in the document-level lists)
// containing a term, with its term frequency. It is the logical element
// of a posting list; the stored form is delta/varint compressed
// (postlist.go), and the wire form the durability snapshot moves is
// PostingList.
type Posting struct {
	ID int32 // passage id, or document index in docPostings
	TF int32
}

// passageEntry is the stored form of a passage.
type passageEntry struct {
	doc        int
	sentStart  int
	sentEnd    int
	sentOffset int // index into the document's sentence slice
}

// docSlot holds one document's analysed sentences, either eagerly (a
// live Add) or lazily (a snapshot restore keeps the wire token block and
// decodes on first touch — sentsAt). lazy decode synchronises through
// once, so concurrent readers under the index read lock are safe; block
// and the counts are immutable after construction.
type docSlot struct {
	once   sync.Once
	sents  []nlp.Sentence
	block  []byte // wire token block; nil for eagerly-added documents
	nSents int32
	nToks  int32
}

// Index is an inverted passage index. Safe for concurrent searches after
// construction; adding documents takes the write lock.
type Index struct {
	passageSize int
	stride      int

	mu       sync.RWMutex
	docs     []Document
	docSents []*docSlot
	passages []passageEntry
	// byURL maps a document URL to its first index in docs — the
	// idempotency probe (HasURL) the streaming seeder uses to skip pages
	// that already survived a crash.
	byURL map[string]int

	// tokTags / tokLemmas are the snapshot's tag and lemma intern tables,
	// kept so lazy doc slots decode against them and Export reuses stored
	// blocks verbatim. Empty for an index built purely by Add.
	tokTags   []string
	tokLemmas []string

	// terms is the interned term dictionary: lemma → dense term id.
	// Ids are append-only — assigned in first-occurrence order and never
	// reused — so the per-term slices below stay valid forever.
	terms       map[string]int32
	postings    []postingList // term id → passages containing it, ascending
	docPostings []postingList // term id → documents containing it, ascending

	// journal, when set, receives every indexed document while the write
	// lock is still held (see SetJournal in snapshot.go).
	journal Journal
}

// Option configures an Index.
type Option func(*Index)

// WithPassageSize sets the sentence-window size (minimum 1).
func WithPassageSize(n int) Option {
	return func(ix *Index) {
		if n >= 1 {
			ix.passageSize = n
		}
	}
}

// WithStride sets the window stride; smaller strides mean more overlap.
func WithStride(n int) Option {
	return func(ix *Index) {
		if n >= 1 {
			ix.stride = n
		}
	}
}

// NewIndex returns an empty index with the given options. The default
// window is 8 sentences with a half-window stride.
func NewIndex(opts ...Option) *Index {
	ix := &Index{
		passageSize: DefaultPassageSize,
		terms:       make(map[string]int32),
		byURL:       make(map[string]int),
	}
	for _, o := range opts {
		o(ix)
	}
	if ix.stride == 0 {
		ix.stride = ix.passageSize / 2
		if ix.stride == 0 {
			ix.stride = 1
		}
	}
	// A stride beyond the window would leave sentences uncovered.
	if ix.stride > ix.passageSize {
		ix.stride = ix.passageSize
	}
	return ix
}

// intern returns the dense id of a lemma, assigning the next id on first
// sight. Caller holds the write lock.
func (ix *Index) intern(lemma string) int32 {
	if id, ok := ix.terms[lemma]; ok {
		return id
	}
	id := int32(len(ix.postings))
	ix.terms[lemma] = id
	ix.postings = append(ix.postings, postingList{})
	ix.docPostings = append(ix.docPostings, postingList{})
	return id
}

// sentsAt returns document d's analysed sentences, decoding a restored
// document's token block on first touch. Callers hold at least the read
// lock; the slot's sync.Once makes the decode race-free across
// concurrent readers.
func (ix *Index) sentsAt(d int) []nlp.Sentence {
	s := ix.docSents[d]
	if s.block != nil {
		s.once.Do(func() {
			s.sents = decodeTokenBlock(s.block, ix.docs[d].Text, int(s.nSents), int(s.nToks), ix.tokTags, ix.tokLemmas)
		})
	}
	return s.sents
}

// splitDoc validates and sentence-splits one document outside the lock.
func splitDoc(doc Document) ([]nlp.Sentence, error) {
	if strings.TrimSpace(doc.Text) == "" {
		return nil, fmt.Errorf("ir: empty document %q", doc.URL)
	}
	sents := nlp.SplitSentences(doc.Text)
	if len(sents) == 0 {
		return nil, fmt.Errorf("ir: no sentences in document %q", doc.URL)
	}
	return sents, nil
}

// Add indexes a document: sentence split, lemmatisation, stopword removal,
// passage windowing. Empty documents are rejected.
func (ix *Index) Add(doc Document) error {
	sents, err := splitDoc(doc)
	if err != nil {
		return err
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()

	ix.addLocked(doc, sents)
	if ix.journal != nil {
		if err := ix.journal.LogDocument(doc); err != nil {
			return fmt.Errorf("ir: journal: %w", err)
		}
	}
	return nil
}

// AddBatch indexes a batch of documents as one write-lock acquisition and
// one journal record (Journal.LogDocuments — one fsync however large the
// batch). Every document is validated and sentence-split before the first
// one is installed, so a malformed document rejects the whole batch with
// the index untouched; this is the streaming seeder's commit unit.
func (ix *Index) AddBatch(docs []Document) error {
	if len(docs) == 0 {
		return nil
	}
	split := make([][]nlp.Sentence, len(docs))
	for i, d := range docs {
		sents, err := splitDoc(d)
		if err != nil {
			return fmt.Errorf("ir: batch document %d: %w", i, err)
		}
		split[i] = sents
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, d := range docs {
		ix.addLocked(d, split[i])
	}
	if ix.journal != nil {
		if err := ix.journal.LogDocuments(docs); err != nil {
			return fmt.Errorf("ir: journal: %w", err)
		}
	}
	return nil
}

// addLocked installs one pre-split document. Caller holds the write lock.
func (ix *Index) addLocked(doc Document, sents []nlp.Sentence) {
	docIdx := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	ix.docSents = append(ix.docSents, &docSlot{sents: sents})
	if _, ok := ix.byURL[doc.URL]; !ok {
		ix.byURL[doc.URL] = docIdx
	}

	// Intern each sentence's content lemmas once (in text order, so term
	// ids are deterministic); the document stats and every overlapping
	// window reuse the id slices instead of re-deriving lemmas.
	sentTerms := make([][]int32, len(sents))
	for i, s := range sents {
		lemmas := s.ContentLemmas()
		ids := make([]int32, len(lemmas))
		for j, lemma := range lemmas {
			ids[j] = ix.intern(lemma)
		}
		sentTerms[i] = ids
	}

	// Document-level stats for the IR baseline.
	dtf := map[int32]int32{}
	for _, ids := range sentTerms {
		for _, id := range ids {
			dtf[id]++
		}
	}
	for id, tf := range dtf {
		// Documents are indexed one at a time, so each per-term list
		// receives ascending document indexes regardless of map order.
		ix.docPostings[id].add(int32(docIdx), tf)
	}

	// Passage windows.
	for start := 0; start < len(sents); start += ix.stride {
		end := start + ix.passageSize
		if end > len(sents) {
			end = len(sents)
		}
		pid := len(ix.passages)
		ix.passages = append(ix.passages, passageEntry{
			doc: docIdx, sentStart: start, sentEnd: end, sentOffset: start,
		})
		ptf := map[int32]int32{}
		for _, ids := range sentTerms[start:end] {
			for _, id := range ids {
				ptf[id]++
			}
		}
		for id, tf := range ptf {
			ix.postings[id].add(int32(pid), tf)
		}
		if end == len(sents) {
			break
		}
	}
}

// HasURL reports whether a document with this URL is already indexed —
// the seeder's resume probe: a page whose WAL record survived the crash
// is skipped instead of re-indexed.
func (ix *Index) HasURL(url string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byURL[url]
	return ok
}

// AddAll indexes a batch of documents, collecting per-document errors.
func (ix *Index) AddAll(docs []Document) error {
	var errs []string
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("ir: %d documents failed: %s", len(errs), strings.Join(errs, "; "))
	}
	return nil
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// PassageCount returns the number of indexed passages.
func (ix *Index) PassageCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.passages)
}

// TermCount returns the number of distinct interned terms.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms)
}

// DF returns the number of documents containing the lemma.
func (ix *Index) DF(lemma string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.terms[lemma]
	if !ok {
		return 0
	}
	return ix.docPostings[id].count()
}

// QueryTerms analyses free text into content lemmas for retrieval —
// stop-words are discarded, matching the paper's description of the IR
// side ("IR usually receives just a set of keywords ... discarding
// stop-words"). It is the single normalisation point of the query path:
// terms come out lowercased and deduplicated, which is the form Search
// and SearchDocuments expect.
func QueryTerms(text string) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range nlp.Analyze(text) {
		if t.IsContentWord() && !nlp.IsStopword(t.Lemma) && !seen[t.Lemma] {
			seen[t.Lemma] = true
			out = append(out, t.Lemma)
		}
	}
	return out
}

// Search returns the top-k passages for the query terms, ranked by the
// IR-n style weight sum((1+log tf) * idf). Deterministic: ties break by
// document then passage position. Terms must be normalised (lowercase,
// deduplicated) as QueryTerms and the QA question analysis produce them;
// Search itself does no lowercasing or deduplication.
//
// Scores accumulate in a pooled epoch-stamped sparse accumulator: only
// passages that actually match a term are touched, so a query costs
// O(matched postings + matches·log k) with zero per-query allocation
// proportional to the index — the property that keeps cold-path
// retrieval sublinear in corpus size (see PERF.md "Sparse retrieval").
// Ranking is byte-identical to the dense SearchReference oracle.
func (ix *Index) Search(terms []string, k int) []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.passages) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	acc := getAcc(len(ix.passages))
	defer putAcc(acc)
	nPass := float64(len(ix.passages))
	for _, term := range terms {
		id, ok := ix.terms[term]
		if !ok {
			continue
		}
		pl := &ix.postings[id]
		n := pl.count()
		if n == 0 {
			continue
		}
		idf := math.Log(1 + nPass/float64(n))
		for c := pl.cursor(); ; {
			pid, tf, ok := c.next()
			if !ok {
				break
			}
			acc.add(pid, (1+math.Log(float64(tf)))*idf)
		}
	}
	ids := acc.rank(k)
	out := make([]Passage, 0, len(ids))
	for _, id := range ids {
		out = append(out, ix.materializeLocked(int(id), acc.scores[id]))
	}
	return out
}

// materializeLocked builds the Passage value for a passage ID.
func (ix *Index) materializeLocked(id int, score float64) Passage {
	pe := ix.passages[id]
	sents := ix.sentsAt(pe.doc)[pe.sentStart:pe.sentEnd]
	doc := ix.docs[pe.doc]
	start := sents[0].Start
	end := sents[len(sents)-1].End
	return Passage{
		DocURL:    doc.URL,
		DocIndex:  pe.doc,
		DocOrd:    doc.Ord,
		SentStart: pe.sentStart,
		SentEnd:   pe.sentEnd,
		Text:      doc.Text[start:end],
		Score:     score,
		Sentences: sents,
	}
}

// SearchDocuments is the classical-IR baseline: rank whole documents by
// tf-idf and return them in full. The caller (a user, per the paper) "has
// to further search for the requested information" inside them. Like
// Search it expects normalised terms and scores sparsely over the
// document posting lists; SearchDocumentsReference retains the dense
// oracle.
func (ix *Index) SearchDocuments(terms []string, k int) []DocResult {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 || len(terms) == 0 || k <= 0 {
		return nil
	}
	acc := getAcc(len(ix.docs))
	defer putAcc(acc)
	nDocs := float64(len(ix.docs))
	for _, term := range terms {
		id, ok := ix.terms[term]
		if !ok {
			continue
		}
		pl := &ix.docPostings[id]
		n := pl.count()
		if n == 0 {
			continue
		}
		idf := math.Log(1 + nDocs/float64(n))
		for c := pl.cursor(); ; {
			did, tf, ok := c.next()
			if !ok {
				break
			}
			acc.add(did, (1+math.Log(float64(tf)))*idf)
		}
	}
	ids := acc.rank(k)
	out := make([]DocResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, DocResult{
			URL: ix.docs[id].URL, DocIndex: int(id),
			Score: acc.scores[id], Text: ix.docs[id].Text,
		})
	}
	return out
}

// AllPassages materializes every passage (score zero) — used by the
// QA-without-IR-filter ablation, which must analyse the whole collection.
func (ix *Index) AllPassages() []Passage {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Passage, 0, len(ix.passages))
	for id := range ix.passages {
		out = append(out, ix.materializeLocked(id, 0))
	}
	return out
}

// Document returns the indexed document at the given index.
func (ix *Index) Document(i int) (Document, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if i < 0 || i >= len(ix.docs) {
		return Document{}, fmt.Errorf("ir: document index %d out of range", i)
	}
	return ix.docs[i], nil
}
