module dwqa

go 1.24
