package engine

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOutcomeClass(t *testing.T) {
	cases := []struct {
		status int
		want   string
	}{
		{200, "ok"}, {204, "ok"},
		{429, "shed"},
		{504, "timeout"},
		{503, "degraded"},
		{403, "readonly"},
		{400, "client_error"}, {422, "client_error"},
		{500, "error"}, {502, "error"},
	}
	for _, c := range cases {
		if got := outcomeClass(c.status); got != c.want {
			t.Errorf("outcomeClass(%d) = %q, want %q", c.status, got, c.want)
		}
	}
}

// TestRequestMiddlewarePanic pins the request boundary: a panic escaping
// a handler is recovered into a logged 500 carrying the request id, the
// panics counter ticks, and the access line still reports the request.
func TestRequestMiddlewarePanic(t *testing.T) {
	e := &Engine{met: newEngineMetrics(false)}
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	h := requestMiddleware(e, ServerOptions{Logf: logf},
		http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
			panic("handler bug")
		}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := e.met.panicTotal.Value(); got != 1 {
		t.Errorf("panicTotal = %d, want 1", got)
	}
	if len(lines) != 2 {
		t.Fatalf("logged %d lines (%q), want panic line + access line", len(lines), lines)
	}
	for _, want := range []string{"req=", "panic recovered", "GET /trace", "handler bug"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("panic line %q missing %q", lines[0], want)
		}
	}
	for _, want := range []string{"req=", "status=500", "outcome=error"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("access line %q missing %q", lines[1], want)
		}
	}
	// The panic and access lines carry the same request id.
	id := lines[0][:strings.Index(lines[0], " ")]
	if !strings.HasPrefix(lines[1], id+" ") {
		t.Errorf("request ids differ: %q vs %q", lines[0], lines[1])
	}
}
