package merge

import (
	"strings"
	"testing"

	"dwqa/internal/ontology"
	"dwqa/internal/wordnet"
)

// domainOntology builds the enriched Figure 2 ontology: concepts from the
// UML model plus DW instances (Step 2 already applied).
func domainOntology() *ontology.Ontology {
	o := ontology.New("LastMinuteSales")
	for _, c := range []string{"Airport", "City", "State", "Customer", "Last Minute Sales"} {
		o.AddConcept(c)
	}
	o.AddRelation("Airport", ontology.Relation{Name: "locatedIn", Target: "City"})
	o.AddInstance("Airport", ontology.Instance{
		Name:       "El Prat",
		Properties: map[string]string{"locatedIn": "Barcelona"},
	})
	o.AddInstance("Airport", ontology.Instance{
		Name:    "JFK",
		Aliases: []string{"Kennedy International Airport"},
	})
	o.AddInstance("Airport", ontology.Instance{Name: "John Wayne"})
	o.AddInstance("Airport", ontology.Instance{Name: "La Guardia"})
	o.AddInstance("City", ontology.Instance{Name: "Barcelona"})
	o.AddInstance("City", ontology.Instance{Name: "Costa Mesa"})
	return o
}

func TestMergeExactMatch(t *testing.T) {
	wn := wordnet.Seed()
	rep, err := Merge(domainOntology(), wn)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Airport, City, State exist in WordNet → exact matches.
	if rep.Mapping["airport"] != "n.airport" {
		t.Errorf("airport mapped to %s", rep.Mapping["airport"])
	}
	if rep.Mapping["city"] != "n.city" {
		t.Errorf("city mapped to %s", rep.Mapping["city"])
	}
	if rep.Count(ExactMatch) < 3 {
		t.Errorf("exact matches = %d, want >= 3", rep.Count(ExactMatch))
	}
}

func TestMergeHeadMatch(t *testing.T) {
	// The paper: "Last Minute Sales" is not in WordNet; its head "Sale" is,
	// so a new hyponym of Sale is created.
	wn := wordnet.Seed()
	rep, err := Merge(domainOntology(), wn)
	if err != nil {
		t.Fatal(err)
	}
	id := rep.Mapping["last minute sales"]
	if id == "" {
		t.Fatal("last minute sales not mapped")
	}
	s := wn.Synset(id)
	if s == nil {
		t.Fatal("mapped synset does not exist")
	}
	if !wn.IsA(id, "n.sale") {
		t.Errorf("last minute sales should be a hyponym of sale, paths: %v", wn.HypernymPaths(id))
	}
	found := false
	for _, e := range rep.Entries {
		if e.Name == "Last Minute Sales" && e.Action == HeadMatch {
			found = true
		}
	}
	if !found {
		t.Error("no head-match entry for Last Minute Sales")
	}
}

func TestMergeInstanceAdded(t *testing.T) {
	// "John Wayne" and "La Guardia" do not exist as airports: after the
	// merge they must be hyponyms/instances of airport, while their person
	// senses survive.
	wn := wordnet.Seed()
	if _, err := Merge(domainOntology(), wn); err != nil {
		t.Fatal(err)
	}
	if !wn.LemmaIsA("john wayne", wordnet.Noun, "airport") {
		t.Error("john wayne should now have an airport sense")
	}
	if !wn.LemmaIsA("john wayne", wordnet.Noun, "person") {
		t.Error("john wayne must keep its actor sense")
	}
	if !wn.LemmaIsA("la guardia", wordnet.Noun, "airport") {
		t.Error("la guardia should now have an airport sense")
	}
	if !wn.LemmaIsA("el prat", wordnet.Noun, "airport") {
		t.Error("el prat should now have an airport sense")
	}
}

func TestMergeSynonymEnrichment(t *testing.T) {
	// The JFK case: "Kennedy International Airport" exists under airport,
	// so "JFK" becomes a synonym of that synset rather than a new one.
	wn := wordnet.Seed()
	rep, err := Merge(domainOntology(), wn)
	if err != nil {
		t.Fatal(err)
	}
	senses := wn.Lookup("jfk", wordnet.Noun)
	if len(senses) != 1 {
		t.Fatalf("jfk has %d senses, want 1", len(senses))
	}
	if senses[0].ID != "n.kennedy_airport" {
		t.Errorf("jfk attached to %s, want n.kennedy_airport", senses[0].ID)
	}
	enriched := false
	for _, e := range rep.Entries {
		if e.Name == "JFK" && e.Action == SynonymEnriched {
			enriched = true
		}
	}
	if !enriched {
		t.Error("no synonym-enriched entry for JFK")
	}
}

func TestMergeInstanceKept(t *testing.T) {
	// Barcelona already exists as an instance of city: nothing is added.
	wn := wordnet.Seed()
	rep, err := Merge(domainOntology(), wn)
	if err != nil {
		t.Fatal(err)
	}
	kept := false
	for _, e := range rep.Entries {
		if e.Name == "Barcelona" && e.Action == InstanceKept {
			kept = true
		}
	}
	if !kept {
		t.Errorf("Barcelona should be instance-kept; entries: %+v", rep.Entries)
	}
	if n := len(wn.Lookup("barcelona", wordnet.Noun)); n != 1 {
		t.Errorf("barcelona has %d senses after merge, want 1", n)
	}
}

func TestMergeLocationProperty(t *testing.T) {
	// El Prat locatedIn Barcelona → holonym edge, so QA can expand the
	// airport to its city ("the SB El Prat is tagged as an airport located
	// in the city of Barcelona").
	wn := wordnet.Seed()
	if _, err := Merge(domainOntology(), wn); err != nil {
		t.Fatal(err)
	}
	prat := wn.Lookup("el prat", wordnet.Noun)
	var airportSense *wordnet.Synset
	for _, s := range prat {
		if wn.IsA(s.ID, "n.airport") {
			airportSense = s
		}
	}
	if airportSense == nil {
		t.Fatal("no airport sense for el prat")
	}
	holo := airportSense.Related(wordnet.PartHolonym)
	if len(holo) == 0 || holo[0] != "n.barcelona" {
		t.Errorf("el prat holonyms = %v, want [n.barcelona]", holo)
	}
}

func TestMergeIdempotent(t *testing.T) {
	wn := wordnet.Seed()
	dom := domainOntology()
	if _, err := Merge(dom, wn); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := wn.Size()
	rep2, err := Merge(dom, wn)
	if err != nil {
		t.Fatalf("second merge: %v", err)
	}
	if wn.Size() != sizeAfterFirst {
		t.Errorf("second merge grew the lexicon: %d → %d", sizeAfterFirst, wn.Size())
	}
	if rep2.Count(InstanceAdded) != 0 {
		t.Errorf("second merge added %d instances", rep2.Count(InstanceAdded))
	}
	if rep2.Count(SynonymEnriched) != 0 {
		t.Errorf("second merge enriched %d synonyms", rep2.Count(SynonymEnriched))
	}
}

func TestMergeNewTree(t *testing.T) {
	// A concept with no WordNet match at all starts a new tree.
	wn := wordnet.Seed()
	o := ontology.New("x")
	o.AddConcept("Zorblatt Quux")
	rep, err := Merge(o, wn)
	if err != nil {
		t.Fatal(err)
	}
	id := rep.Mapping["zorblatt quux"]
	if id == "" || wn.Synset(id) == nil {
		t.Fatal("new-tree concept not added")
	}
	if rep.Count(NewTree) != 1 {
		t.Errorf("NewTree count = %d", rep.Count(NewTree))
	}
	if d := wn.Depth(id); d != 0 {
		t.Errorf("new tree root should have depth 0, got %d", d)
	}
}

func TestReportString(t *testing.T) {
	wn := wordnet.Seed()
	rep, err := Merge(domainOntology(), wn)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "exact") || !strings.Contains(s, "inst-added") {
		t.Errorf("report string incomplete: %s", s)
	}
}
