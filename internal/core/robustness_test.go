package core

import (
	"strings"
	"sync"
	"testing"

	"dwqa/internal/ir"
	"dwqa/internal/qa"
	"dwqa/internal/webcorpus"
	"dwqa/internal/wordnet"
)

// Failure-injection and robustness tests: the integration must degrade
// loudly or gracefully, never silently wrong.

func TestPipelineWithTinyCorpus(t *testing.T) {
	// A corpus covering a single city/month still runs end to end.
	cfg := DefaultConfig()
	cfg.Corpus = &webcorpus.Config{
		Cities: []string{"Barcelona"}, Year: 2004, Months: []int{1},
		Seed: 42, TableShare: 0, IncludeDistractors: false,
	}
	cfg.Months = []int{1}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Location != "Barcelona" {
		t.Errorf("tiny corpus answer = %+v", res.Best)
	}
}

func TestPipelineUncoveredCityQuestion(t *testing.T) {
	// Asking about a city the corpus has no pages for must not fabricate
	// a matching answer.
	p := runAll(t)
	res, err := p.Ask("What is the weather like in January of 2004 in Lausanne?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Best.Location == "Lausanne" {
		t.Errorf("fabricated answer for uncovered city: %+v", res.Best)
	}
}

func TestQAOverEmptyIndex(t *testing.T) {
	// A QA system over an empty collection answers nothing, not garbage.
	wn := wordnet.Seed()
	sys, err := qa.NewSystem(wn, nil, ir.NewIndex(), qa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.TunePatterns(qa.WeatherPatterns()...)
	res, err := sys.Answer("What is the temperature in January of 2004 in Barcelona?")
	if err != nil {
		t.Fatalf("empty index should not error: %v", err)
	}
	if res.Best != nil {
		t.Errorf("answer from empty index: %+v", res.Best)
	}
	if len(res.Passages) != 0 {
		t.Errorf("passages from empty index: %d", len(res.Passages))
	}
}

func TestMalformedPagesSurviveIndexing(t *testing.T) {
	// Broken HTML degrades to best-effort text; the pipeline must accept
	// a corpus containing such pages.
	corpus := webcorpus.Build(webcorpus.DefaultConfig())
	corpus.Pages = append(corpus.Pages, webcorpus.Page{
		URL:  "http://broken.example/page",
		HTML: "<html><body><p>Temperature 12º C in Barcelona<table><tr><td>unclosed",
	})
	docs := corpus.Documents(false)
	index := ir.NewIndex()
	if err := index.AddAll(docs); err != nil {
		t.Fatalf("malformed page broke indexing: %v", err)
	}
	if index.DocCount() != len(corpus.Pages) {
		t.Errorf("indexed %d of %d pages", index.DocCount(), len(corpus.Pages))
	}
}

func TestConcurrentAsks(t *testing.T) {
	p := runAll(t)
	questions := []string{
		"What is the weather like in January of 2004 in El Prat?",
		"What is the temperature in February of 2004 in JFK?",
		"Which country did Iraq invade in 1990?",
		"Who was the mayor of New York?",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(questions)*8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range questions {
				if _, err := p.Ask(q); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Ask: %v", err)
	}
}

func TestStep5WithUnanswerableQuestions(t *testing.T) {
	p := newPipeline(t)
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	results, err := p.Step5FeedWarehouse([]string{
		"What is the weather like in December of 1999 in Lausanne?",
	})
	if err != nil {
		t.Fatalf("unanswerable questions should not abort the feed: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if results[0].Answers != 0 {
		t.Errorf("uncovered question loaded %d records", results[0].Answers)
	}
}

func TestRunAllIdempotentFeed(t *testing.T) {
	// Running Step 5 twice must not duplicate warehouse rows (the ETL
	// loader deduplicates by city/day/source).
	p := runAll(t)
	before := p.Warehouse.FactCount("Weather")
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	after := p.Warehouse.FactCount("Weather")
	if after != before {
		t.Errorf("second feed changed rows %d → %d; Step 5 is not idempotent", before, after)
	}
}

func TestAblationsComposable(t *testing.T) {
	// Both ablations off at once still runs (worst configuration).
	cfg := DefaultConfig()
	cfg.QA.UseOntology = false
	cfg.QA.UseIRFilter = false
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ask("What is the temperature in January of 2004 in Barcelona?"); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryBeforeSteps(t *testing.T) {
	p := newPipeline(t)
	s := p.Summary()
	if !strings.Contains(s, "warehouse:") {
		t.Errorf("pre-step summary incomplete: %s", s)
	}
	if strings.Contains(s, "ontology:") {
		t.Error("pre-step summary should not mention an ontology yet")
	}
}
