package core

import (
	"strings"
	"testing"

	"dwqa/internal/ir"
)

func TestBuildScaledCorpus(t *testing.T) {
	sc, err := BuildScaledCorpus(800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Index.PassageCount(); got < 800 {
		t.Errorf("PassageCount = %d, want >= 800", got)
	}
	if sc.Pages == 0 || len(sc.Cities) == 0 || len(sc.Years) == 0 {
		t.Fatalf("corpus metadata empty: %+v", sc)
	}
	if sc.Index.DocCount() != sc.Pages {
		t.Errorf("DocCount = %d, Pages = %d", sc.Index.DocCount(), sc.Pages)
	}

	// Deterministic: same target and seed rebuild the same corpus.
	again, err := BuildScaledCorpus(800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pages != sc.Pages || again.Index.PassageCount() != sc.Index.PassageCount() ||
		again.Index.TermCount() != sc.Index.TermCount() {
		t.Errorf("rebuild diverges: %d/%d/%d vs %d/%d/%d",
			again.Pages, again.Index.PassageCount(), again.Index.TermCount(),
			sc.Pages, sc.Index.PassageCount(), sc.Index.TermCount())
	}

	// The workload: one selective query per city, carrying the city term
	// and the month term (the dropped-focus main-SB shape).
	queries := sc.Queries()
	if len(queries) != len(sc.Cities) {
		t.Fatalf("Queries = %d, cities = %d", len(queries), len(sc.Cities))
	}
	for i, q := range queries {
		if len(q) < 2 {
			t.Fatalf("query %d too short: %v", i, q)
		}
		hasMonth := false
		for _, term := range q {
			if term == "january" {
				hasMonth = true
			}
			if term != strings.ToLower(term) {
				t.Errorf("query %d term %q not normalised", i, term)
			}
		}
		if !hasMonth {
			t.Errorf("query %d lacks the month term: %v", i, q)
		}
	}

	// Sparse and dense must agree before anything is benchmarked...
	if err := VerifyScaledIR(sc, 10); err != nil {
		t.Fatalf("VerifyScaledIR: %v", err)
	}
	// ...and the shared timed loop bodies must run clean.
	if err := RunIRSearchSparse(sc.Index, queries, 10, 3); err != nil {
		t.Errorf("RunIRSearchSparse: %v", err)
	}
	if err := RunIRSearchDense(sc.Index, queries, 10, 3); err != nil {
		t.Errorf("RunIRSearchDense: %v", err)
	}
}

func TestBuildScaledCorpusTinyTarget(t *testing.T) {
	sc, err := BuildScaledCorpus(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Index.PassageCount() < 1 || sc.Pages != 1 {
		t.Errorf("tiny corpus: passages=%d pages=%d", sc.Index.PassageCount(), sc.Pages)
	}
}

func TestScaledIRErrorPaths(t *testing.T) {
	sc, err := BuildScaledCorpus(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A no-match workload must surface as an error, not silent zero work.
	bad := [][]string{{"zzzunmatchable"}}
	if err := RunIRSearchSparse(sc.Index, bad, 5, 1); err == nil {
		t.Error("RunIRSearchSparse accepted a no-match workload")
	}
	if err := RunIRSearchDense(sc.Index, bad, 5, 1); err == nil {
		t.Error("RunIRSearchDense accepted a no-match workload")
	}
	// Verification over an empty index reports the missing passages.
	empty := &ScaledCorpus{Index: ir.NewIndex(), Cities: []string{"Alderford"}}
	if err := VerifyScaledIR(empty, 5); err == nil {
		t.Error("VerifyScaledIR accepted an empty index")
	}
}

func TestColdQuestionWorkload(t *testing.T) {
	p, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := ColdQuestionWorkload(p)
	if len(qs) == 0 {
		t.Fatal("empty cold workload")
	}
	seen := map[string]bool{}
	for _, q := range qs {
		key := strings.ToLower(strings.TrimSpace(q))
		if seen[key] {
			t.Errorf("duplicate cold question %q", q)
		}
		seen[key] = true
	}
}
