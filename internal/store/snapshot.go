package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/ontology"
)

// Snapshot file layout (self-describing, versioned, checksummed):
//
//	magic    "DWQASNAP"            8 bytes
//	version  uvarint               readers reject newer
//	sections 3 × u64 LE (v3+)     absolute offsets of the dw/ir/onto
//	                               sections — a fixed-offset table, so a
//	                               reader can seek straight to a section
//	                               without parsing the ones before it
//	walSeq   uvarint               last WAL record the snapshot covers
//	dw       section               warehouse members + fact columns
//	ir       section               docs, token blocks, passages,
//	                               dictionary, compressed postings
//	onto     section               merged ontology incl. axioms
//	crc32c   4 bytes LE            Castagnoli checksum of all prior bytes
//
// Files are written to a temp name and renamed into place, so a crash
// mid-write never leaves a live snapshot truncated — and if it somehow
// did, the checksum catches it and recovery falls back to the previous
// snapshot.

const (
	snapshotMagic = "DWQASNAP"
	// SchemaVersion is the snapshot format version this build writes and
	// the newest it can read. v3 stores posting lists in their compressed
	// delta/varint wire form (installed at restore without re-encoding)
	// and adds the fixed-offset section table; token blocks are unchanged
	// but are now decoded lazily on first touch rather than at load. v2
	// added the per-document global ordinal (ir.Document.Ord) that sharded
	// deployments merge-sort on; v1 snapshots still load, with every
	// ordinal zero.
	SchemaVersion = 3

	// sectionCount is the number of entries in the v3+ section table.
	sectionCount = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// State is the full persistent state of the engine stack: the warehouse
// contents, the passage index and the merged ontology, stamped with the
// WAL sequence they cover. Recovery = load State + replay WAL records
// with seq > WALSeq. Fingerprint is an opaque caller-owned string (the
// pipeline stores its scenario parameters there) checked at recovery so
// state from one configuration is never silently grafted onto another.
type State struct {
	WALSeq      uint64
	Fingerprint string
	DW          *dw.Snapshot
	IR          *ir.Snapshot
	Onto        *ontology.Snapshot
}

// EncodeState renders a State into the snapshot file format. The section
// table is reserved up front and patched once the section offsets are
// known.
func EncodeState(st *State) []byte {
	w := &writer{buf: make([]byte, 0, 1<<20)}
	w.buf = append(w.buf, snapshotMagic...)
	w.uvarint(SchemaVersion)
	table := len(w.buf)
	w.buf = append(w.buf, make([]byte, 8*sectionCount)...)
	w.uvarint(st.WALSeq)
	w.str(st.Fingerprint)
	var offs [sectionCount]uint64
	offs[0] = uint64(len(w.buf))
	encodeDW(w, st.DW)
	offs[1] = uint64(len(w.buf))
	encodeIR(w, st.IR)
	offs[2] = uint64(len(w.buf))
	encodeOnto(w, st.Onto)
	for i, off := range offs {
		binary.LittleEndian.PutUint64(w.buf[table+8*i:], off)
	}
	w.buf = appendCRC(w.buf)
	return w.buf
}

func appendCRC(buf []byte) []byte {
	sum := crc32.Checksum(buf, crcTable)
	return append(buf, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// DecodeState parses and validates a snapshot file image: magic, version
// gate, checksum, then the three sections. Every failure is loud and
// names what broke.
func DecodeState(buf []byte) (*State, error) {
	if len(buf) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(buf))
	}
	if string(buf[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: bad snapshot magic %q", buf[:len(snapshotMagic)])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := &reader{buf: body, off: len(snapshotMagic)}
	version := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if version > SchemaVersion {
		return nil, fmt.Errorf("store: snapshot schema v%d is newer than supported v%d (upgrade dwqa to read it)",
			version, SchemaVersion)
	}
	if version == 0 {
		return nil, fmt.Errorf("store: snapshot schema v0 is invalid")
	}
	var offs [sectionCount]uint64
	if version >= 3 {
		if r.remaining() < 8*sectionCount {
			return nil, fmt.Errorf("store: snapshot truncated inside section table")
		}
		for i := range offs {
			offs[i] = binary.LittleEndian.Uint64(body[r.off+8*i:])
		}
		r.off += 8 * sectionCount
		prev := uint64(r.off)
		for i, off := range offs {
			if off < prev || off > uint64(len(body)) {
				return nil, fmt.Errorf("store: section table entry %d offset %d out of order (body %d bytes)", i, off, len(body))
			}
			prev = off
		}
	}
	st := &State{WALSeq: r.uvarint(), Fingerprint: r.str()}
	if version >= 3 {
		// Seek via the section table rather than trusting sequential
		// position — this is what lets partial readers skip sections.
		r.seek(int(offs[0]))
		st.DW = decodeDW(r)
		r.seek(int(offs[1]))
		st.IR = decodeIR(r, version)
		r.seek(int(offs[2]))
		st.Onto = decodeOnto(r)
	} else {
		st.DW = decodeDW(r)
		st.IR = decodeIR(r, version)
		st.Onto = decodeOnto(r)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot body", r.remaining())
	}
	return st, nil
}

// writeSnapshotFile writes an encoded snapshot atomically: temp file in
// the same directory, fsync, rename, directory fsync.
func writeSnapshotFile(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	_ = fsys.SyncDir(dir) // best-effort directory durability
	return nil
}

// --- warehouse section ---

func encodeDW(w *writer, snap *dw.Snapshot) {
	w.uvarint(uint64(len(snap.Dims)))
	for _, ds := range snap.Dims {
		w.str(ds.Dim)
		w.uvarint(uint64(len(ds.Levels)))
		for _, ls := range ds.Levels {
			w.str(ls.Level)
			w.uvarint(uint64(len(ls.Members)))
			for _, m := range ls.Members {
				w.str(m.Name)
				w.varint(int64(m.Parent))
				encodeStringMap(w, m.Attrs)
			}
		}
	}
	w.uvarint(uint64(len(snap.Facts)))
	for _, fs := range snap.Facts {
		w.str(fs.Fact)
		w.uvarint(uint64(fs.Rows))
		w.uvarint(uint64(len(fs.Coords)))
		for _, col := range fs.Coords {
			w.i32s(col)
		}
		w.uvarint(uint64(len(fs.Measures)))
		for _, col := range fs.Measures {
			w.f64s(col)
		}
		w.i32s(fs.ProvRows)
		w.strs(fs.ProvVals)
	}
}

func decodeDW(r *reader) *dw.Snapshot {
	snap := &dw.Snapshot{}
	nDims := r.count(2)
	for d := 0; d < nDims && r.err == nil; d++ {
		ds := dw.DimensionSnapshot{Dim: r.str()}
		nLevels := r.count(2)
		for l := 0; l < nLevels && r.err == nil; l++ {
			ls := dw.LevelSnapshot{Level: r.str()}
			nMembers := r.count(2)
			if r.err == nil && nMembers > 0 {
				ls.Members = make([]dw.Member, nMembers)
				for i := range ls.Members {
					ls.Members[i] = dw.Member{
						Key:    i,
						Name:   r.str(),
						Parent: int(r.varint()),
						Attrs:  decodeStringMap(r),
					}
				}
			}
			ds.Levels = append(ds.Levels, ls)
		}
		snap.Dims = append(snap.Dims, ds)
	}
	nFacts := r.count(2)
	for f := 0; f < nFacts && r.err == nil; f++ {
		fs := dw.FactSnapshot{Fact: r.str(), Rows: int(r.uvarint())}
		nCoords := r.count(1)
		fs.Coords = make([][]int32, 0, nCoords)
		for c := 0; c < nCoords && r.err == nil; c++ {
			fs.Coords = append(fs.Coords, r.i32s())
		}
		nMeasures := r.count(1)
		fs.Measures = make([][]float64, 0, nMeasures)
		for c := 0; c < nMeasures && r.err == nil; c++ {
			fs.Measures = append(fs.Measures, r.f64s())
		}
		fs.ProvRows = r.i32s()
		fs.ProvVals = r.strs()
		snap.Facts = append(snap.Facts, fs)
	}
	return snap
}

func encodeStringMap(w *writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

func decodeStringMap(r *reader) map[string]string {
	n := r.count(2)
	if r.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m[k] = r.str()
	}
	return m
}

// --- IR section ---
//
// The expensive parts of indexing a document — tokenisation, tagging,
// lemmatisation, window construction, posting accumulation — are all
// stored, so restore is a bulk load. Token text is NOT stored: a token's
// surface form is exactly doc.Text[start:end), so the decoder slices it
// back out of the document. Tags and lemmas are interned into
// per-snapshot tables and referenced by index.
//
// Since ir.Snapshot carries its sentences as wire token blocks and its
// posting lists delta/varint compressed, the store ships both verbatim:
// encode is a framed copy and decode hands back capacity-clamped
// subslices of the file image without materialising a single token or
// posting. ir.Import validates the blocks and decodes each document
// lazily on first touch, so restore wall-clock no longer scales with
// token count — it is dominated by the structural validation pass.

func encodeIR(w *writer, snap *ir.Snapshot) {
	w.uvarint(uint64(snap.PassageSize))
	w.uvarint(uint64(snap.Stride))
	w.strs(snap.TokTags)
	w.strs(snap.TokLemmas)

	w.uvarint(uint64(len(snap.Docs)))
	for i, doc := range snap.Docs {
		w.str(doc.URL)
		w.str(doc.Text)
		w.varint(doc.Ord)
		w.uvarint(uint64(snap.DocSents[i]))
		w.uvarint(uint64(snap.DocToks[i]))
		w.uvarint(uint64(len(snap.DocTokens[i])))
		w.buf = append(w.buf, snap.DocTokens[i]...)
	}

	w.uvarint(uint64(len(snap.Passages)))
	for _, p := range snap.Passages {
		w.uvarint(uint64(p.Doc))
		w.uvarint(uint64(p.SentStart))
		w.uvarint(uint64(p.SentEnd - p.SentStart))
	}

	w.strs(snap.Terms)
	encodeWirePostings(w, snap.Postings)
	encodeWirePostings(w, snap.DocPostings)
}

func decodeIR(r *reader, version uint64) *ir.Snapshot {
	snap := &ir.Snapshot{
		PassageSize: int(r.uvarint()),
		Stride:      int(r.uvarint()),
	}
	snap.TokTags = r.strs()
	snap.TokLemmas = r.strs()

	nDocs := r.count(2)
	if r.err == nil && nDocs > 0 {
		snap.Docs = make([]ir.Document, 0, nDocs)
		snap.DocTokens = make([][]byte, 0, nDocs)
		snap.DocSents = make([]int32, 0, nDocs)
		snap.DocToks = make([]int32, 0, nDocs)
	}
	for d := 0; d < nDocs && r.err == nil; d++ {
		doc := ir.Document{URL: r.str(), Text: r.str()}
		if version >= 2 {
			doc.Ord = r.varint()
		}
		nSents := r.count(1)
		nToks := r.count(3)
		blockLen := r.count(1)
		block := r.bytes(blockLen)
		if r.err != nil {
			break
		}
		snap.Docs = append(snap.Docs, doc)
		snap.DocTokens = append(snap.DocTokens, block)
		snap.DocSents = append(snap.DocSents, int32(nSents))
		snap.DocToks = append(snap.DocToks, int32(nToks))
	}

	nPassages := r.count(3)
	if r.err == nil && nPassages > 0 {
		snap.Passages = make([]ir.PassageRef, nPassages)
		for i := range snap.Passages {
			doc := r.uvarint()
			start := r.uvarint()
			span := r.uvarint()
			snap.Passages[i] = ir.PassageRef{
				Doc: int32(doc), SentStart: int32(start), SentEnd: int32(start + span),
			}
		}
	}

	snap.Terms = r.strs()
	if version >= 3 {
		snap.Postings = decodeWirePostings(r)
		snap.DocPostings = decodeWirePostings(r)
	} else {
		snap.Postings = compressLists(decodeFixedPostings(r))
		snap.DocPostings = compressLists(decodeFixedPostings(r))
	}
	return snap
}

// encodeWirePostings writes compressed posting lists: per list the
// posting count, the encoded byte length, and the delta/varint bytes
// verbatim — the exact form ir.Import adopts without re-encoding.
func encodeWirePostings(w *writer, lists []ir.PostingList) {
	w.uvarint(uint64(len(lists)))
	for _, pl := range lists {
		w.uvarint(uint64(pl.N))
		w.uvarint(uint64(len(pl.Enc)))
		w.buf = append(w.buf, pl.Enc...)
	}
}

func decodeWirePostings(r *reader) []ir.PostingList {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	lists := make([]ir.PostingList, n)
	for i := 0; i < n && r.err == nil; i++ {
		cnt := r.count(2)
		blen := r.count(1)
		enc := r.bytes(blen)
		if r.err != nil {
			break
		}
		lists[i] = ir.PostingList{N: int32(cnt), Enc: enc}
	}
	return lists
}

// decodeFixedPostings reads the v1/v2 fixed-width little-endian (id, tf)
// pairs — kept only for reading old snapshots.
func decodeFixedPostings(r *reader) [][]ir.Posting {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	lists := make([][]ir.Posting, n)
	for i := 0; i < n && r.err == nil; i++ {
		m := r.count(8)
		if r.err != nil || m == 0 {
			continue
		}
		if r.off+8*m > len(r.buf) {
			r.fail("store: truncated posting list at offset %d", r.off)
			return lists
		}
		posts := make([]ir.Posting, m)
		buf := r.buf[r.off:]
		for j := range posts {
			posts[j] = ir.Posting{
				ID: int32(binary.LittleEndian.Uint32(buf[8*j:])),
				TF: int32(binary.LittleEndian.Uint32(buf[8*j+4:])),
			}
		}
		r.off += 8 * m
		lists[i] = posts
	}
	return lists
}

// compressLists converts legacy raw posting lists into wire form once at
// load; from then on the index holds only the compressed bytes.
func compressLists(lists [][]ir.Posting) []ir.PostingList {
	out := make([]ir.PostingList, len(lists))
	for i, posts := range lists {
		out[i] = ir.CompressPostings(posts)
	}
	return out
}

// --- ontology section ---

func encodeOnto(w *writer, snap *ontology.Snapshot) {
	w.str(snap.Name)
	w.uvarint(uint64(len(snap.Concepts)))
	for _, c := range snap.Concepts {
		w.str(c.Name)
		w.strs(c.Parents)
		w.uvarint(uint64(len(c.Attributes)))
		for _, a := range c.Attributes {
			w.str(a.Name)
			w.str(string(a.Kind))
			w.str(a.Type)
		}
		w.uvarint(uint64(len(c.Relations)))
		for _, rel := range c.Relations {
			w.str(rel.Name)
			w.str(rel.Target)
		}
		w.uvarint(uint64(len(c.Instances)))
		for _, inst := range c.Instances {
			w.str(inst.Name)
			w.strs(inst.Aliases)
			w.strs(inst.PropKeys)
			w.strs(inst.PropVals)
		}
		w.uvarint(uint64(len(c.Axioms)))
		for _, a := range c.Axioms {
			encodeAxiom(w, a)
		}
	}
}

func encodeAxiom(w *writer, a ontology.Axiom) {
	w.str(a.Concept)
	w.str(string(a.Kind))
	w.strs(a.Units)
	w.str(a.Unit)
	w.f64(a.Min)
	w.f64(a.Max)
	w.str(a.FromUnit)
	w.str(a.ToUnit)
	w.f64(a.Scale)
	w.f64(a.Offset)
}

func decodeOnto(r *reader) *ontology.Snapshot {
	snap := &ontology.Snapshot{Name: r.str()}
	nConcepts := r.count(2)
	for i := 0; i < nConcepts && r.err == nil; i++ {
		c := ontology.ConceptSnapshot{Name: r.str(), Parents: r.strs()}
		nAttrs := r.count(3)
		for a := 0; a < nAttrs && r.err == nil; a++ {
			c.Attributes = append(c.Attributes, ontology.Attribute{
				Name: r.str(), Kind: ontology.AttrKind(r.str()), Type: r.str(),
			})
		}
		nRels := r.count(2)
		for x := 0; x < nRels && r.err == nil; x++ {
			c.Relations = append(c.Relations, ontology.Relation{Name: r.str(), Target: r.str()})
		}
		nInsts := r.count(2)
		for x := 0; x < nInsts && r.err == nil; x++ {
			c.Instances = append(c.Instances, ontology.InstanceSnapshot{
				Name: r.str(), Aliases: r.strs(), PropKeys: r.strs(), PropVals: r.strs(),
			})
		}
		nAxioms := r.count(2)
		for x := 0; x < nAxioms && r.err == nil; x++ {
			c.Axioms = append(c.Axioms, decodeAxiom(r))
		}
		snap.Concepts = append(snap.Concepts, c)
	}
	return snap
}

func decodeAxiom(r *reader) ontology.Axiom {
	return ontology.Axiom{
		Concept:  r.str(),
		Kind:     ontology.AxiomKind(r.str()),
		Units:    r.strs(),
		Unit:     r.str(),
		Min:      r.f64(),
		Max:      r.f64(),
		FromUnit: r.str(),
		ToUnit:   r.str(),
		Scale:    r.f64(),
		Offset:   r.f64(),
	}
}
