package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dwqa/internal/nl2olap"
	"dwqa/internal/qa"
	"dwqa/internal/sbparser"
)

// Serving limits: requests beyond them are rejected with 400 rather than
// ballooning memory.
const (
	maxRequestBody = 1 << 20 // 1 MiB of JSON per request
	maxBatchSize   = 10_000  // questions per /ask/batch or /harvest call
)

// NewServer returns the HTTP JSON API over an engine:
//
//	POST /ask        {"question": "..."}        → one answer (factoid or,
//	                                              when classified analytic,
//	                                              the OLAP result table)
//	POST /ask/batch  {"questions": ["...",…]}   → answers in input order
//	POST /ask/olap   {"question": "..."}        → the analytic path only:
//	                                              compiled plan + table
//	POST /harvest    {"questions": ["...",…]}   → Step 5 feed (empty body
//	                                              or list = default workload)
//	GET  /trace?q=…                             → the paper's Table 1 trace
//	GET  /healthz                               → serving statistics
//
// QA-level failures (a question no pattern matches) are reported per item
// in the JSON payload; transport-level failures (bad JSON, oversized
// batches, wrong method) use HTTP status codes. /ask/olap answers 422
// when the question is factoid or cannot be grounded.
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Question string `json:"question"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.Question == "" {
			httpError(w, http.StatusBadRequest, "missing question")
			return
		}
		writeJSON(w, askJSON(e.Ask(req.Question)))
	})
	mux.HandleFunc("POST /ask/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Questions []string `json:"questions"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		if len(req.Questions) == 0 {
			httpError(w, http.StatusBadRequest, "missing questions")
			return
		}
		if len(req.Questions) > maxBatchSize {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-question limit", len(req.Questions), maxBatchSize))
			return
		}
		results := e.AskAll(req.Questions)
		out := struct {
			Results []askResponse `json:"results"`
		}{Results: make([]askResponse, len(results))}
		for i, res := range results {
			out.Results[i] = askJSON(res)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /ask/olap", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Question string `json:"question"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.Question == "" {
			httpError(w, http.StatusBadRequest, "missing question")
			return
		}
		ans, err := e.AskOLAP(req.Question)
		if err != nil {
			code := http.StatusUnprocessableEntity
			if errors.Is(err, nl2olap.ErrFactoid) {
				// Still 422, but spell out where the question belongs.
				err = fmt.Errorf("%w; POST /ask serves factoid questions", err)
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, toOLAPJSON(ans))
	})
	mux.HandleFunc("POST /harvest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Questions []string `json:"questions"`
		}
		// An empty body selects the default harvest workload.
		if !decodeJSONOptional(w, r, &req) {
			return
		}
		if len(req.Questions) > maxBatchSize {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-question limit", len(req.Questions), maxBatchSize))
			return
		}
		items, total, err := e.HarvestAll(req.Questions)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		out := harvestResponse{
			Normalized: total.Normalized,
			Loaded:     total.Loaded,
			Skipped:    total.Skipped,
			Rejected:   len(total.Rejections),
			Generation: e.Generation(),
			Results:    make([]harvestItemJSON, len(items)),
		}
		for i, it := range items {
			out.Results[i] = harvestItemJSON{
				Question: it.Question,
				Answers:  len(it.Answers),
				Loaded:   it.Loaded,
				Skipped:  it.Skipped,
			}
			if it.Err != nil {
				out.Results[i].Error = it.Err.Error()
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		question := r.URL.Query().Get("q")
		if question == "" {
			// The paper's own Table 1 query.
			question = "What is the weather like in January of 2004 in El Prat?"
		}
		tr, err := e.Trace(question)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tr.Format())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Status string `json:"status"`
			Stats
		}{Status: "ok", Stats: e.Stats()})
	})
	return mux
}

// answerJSON is the wire form of one extracted answer.
type answerJSON struct {
	Text     string  `json:"text"`
	Rendered string  `json:"rendered"`
	Value    float64 `json:"value,omitempty"`
	HasValue bool    `json:"has_value,omitempty"`
	Unit     string  `json:"unit,omitempty"`
	Date     string  `json:"date,omitempty"`
	Location string  `json:"location,omitempty"`
	URL      string  `json:"url,omitempty"`
	Score    float64 `json:"score"`
}

// askResponse is the wire form of one answered question. Exactly one of
// Answer (factoid) and OLAP (analytic) is populated on success.
type askResponse struct {
	Question   string      `json:"question"`
	Answer     *answerJSON `json:"answer"` // null when nothing clears MinScore
	OLAP       *olapJSON   `json:"olap,omitempty"`
	Candidates int         `json:"candidates"`
	Passages   int         `json:"passages"`
	Cached     bool        `json:"cached"`
	Error      string      `json:"error,omitempty"`
}

// olapJSON is the wire form of one analytic answer: the compiled plan and
// its result table.
type olapJSON struct {
	Question string        `json:"question"`
	Category string        `json:"category"`
	Plan     string        `json:"plan"`
	Rows     []olapRowJSON `json:"rows"`
	Table    string        `json:"table"`
}

type olapRowJSON struct {
	Groups []string `json:"groups"`
	Value  float64  `json:"value"`
	Count  int      `json:"count"`
}

func toOLAPJSON(a *nl2olap.Answer) *olapJSON {
	out := &olapJSON{
		Question: a.Question,
		Category: string(qa.CatAnalytic),
		Plan:     a.PlanString(),
		Rows:     make([]olapRowJSON, len(a.Result.Rows)),
		Table:    a.Result.Format(),
	}
	for i, r := range a.Result.Rows {
		out.Rows[i] = olapRowJSON{Groups: r.Groups, Value: r.Value, Count: r.Count}
	}
	return out
}

type harvestItemJSON struct {
	Question string `json:"question"`
	Answers  int    `json:"answers"`
	Loaded   int    `json:"loaded"`
	Skipped  int    `json:"skipped"`
	Error    string `json:"error,omitempty"`
}

type harvestResponse struct {
	Normalized int               `json:"normalized"`
	Loaded     int               `json:"loaded"`
	Skipped    int               `json:"skipped"`
	Rejected   int               `json:"rejected"`
	Generation uint64            `json:"generation"`
	Results    []harvestItemJSON `json:"results"`
}

func askJSON(r AskResult) askResponse {
	out := askResponse{Question: r.Question, Cached: r.Cached}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	if r.OLAP != nil {
		out.OLAP = toOLAPJSON(r.OLAP)
		return out
	}
	out.Candidates = len(r.Result.Candidates)
	out.Passages = len(r.Result.Passages)
	if r.Result.Best != nil {
		out.Answer = toAnswerJSON(*r.Result.Best)
	}
	return out
}

func toAnswerJSON(a qa.Answer) *answerJSON {
	return &answerJSON{
		Text:     a.Text,
		Rendered: a.Render(),
		Value:    a.Value,
		HasValue: a.HasValue,
		Unit:     a.Unit,
		Date:     dateJSON(a.Date),
		Location: a.Location,
		URL:      a.URL,
		Score:    a.Score,
	}
}

// dateJSON renders a (possibly partial) date as ISO-style "2004-01-31",
// "2004-01" or "2004"; "" when nothing was recognised.
func dateJSON(d sbparser.DateRef) string {
	switch {
	case d.Year != 0 && d.Month != 0 && d.Day != 0:
		return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
	case d.Year != 0 && d.Month != 0:
		return fmt.Sprintf("%04d-%02d", d.Year, d.Month)
	case d.Year != 0:
		return fmt.Sprintf("%04d", d.Year)
	default:
		return ""
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// decodeJSONOptional is decodeJSON, but an entirely empty body is accepted
// and leaves dst at its zero value.
func decodeJSONOptional(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
