// Package wordnet implements the upper ontology used by the QA system: an
// in-memory WordNet-style lexical database with synsets, the full relation
// inventory the paper lists (hypernym, hyponym, holonym, meronym, antonym,
// synonymy via shared synsets), glosses, the 25 noun and 15 verb base
// types, sense ordering and similarity measures.
//
// The paper uses WordNet/EuroWordNet (~115k synsets). This reproduction
// ships a hand-built seed lexicon (see seed.go) covering general
// vocabulary plus the evaluation domain; the integration model itself
// (Steps 2-3) is what restores domain coverage, exactly as the paper
// argues when it adds "JFK", "John Wayne" and "La Guardia" to the airport
// subtree.
package wordnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// POS is a part of speech for which synsets exist.
type POS string

// Parts of speech distinguished by the lexical database.
const (
	Noun      POS = "n"
	Verb      POS = "v"
	Adjective POS = "a"
	Adverb    POS = "r"
)

// RelType names a semantic relation between synsets.
type RelType string

// The relation inventory. Synonymy is represented by lemma co-membership
// in one synset, as in WordNet, so it has no RelType.
const (
	Hypernym         RelType = "hypernym"          // is-a (more general)
	Hyponym          RelType = "hyponym"           // inverse of Hypernym
	InstanceHypernym RelType = "instance_hypernym" // instance-of
	InstanceHyponym  RelType = "instance_hyponym"  // inverse of InstanceHypernym
	PartMeronym      RelType = "part_meronym"      // has-part
	PartHolonym      RelType = "part_holonym"      // part-of
	MemberMeronym    RelType = "member_meronym"    // has-member
	MemberHolonym    RelType = "member_holonym"    // member-of
	Antonym          RelType = "antonym"
)

// inverseRel maps each relation to its inverse so that Relate can maintain
// both directions.
var inverseRel = map[RelType]RelType{
	Hypernym:         Hyponym,
	Hyponym:          Hypernym,
	InstanceHypernym: InstanceHyponym,
	InstanceHyponym:  InstanceHypernym,
	PartMeronym:      PartHolonym,
	PartHolonym:      PartMeronym,
	MemberMeronym:    MemberHolonym,
	MemberHolonym:    MemberMeronym,
	Antonym:          Antonym,
}

// Synset is a set of synonymous lemmas with a gloss and typed relations to
// other synsets.
type Synset struct {
	ID     string   // unique, e.g. "n.airport.01"
	POS    POS      // part of speech
	Lemmas []string // lower-cased synonyms; the first is canonical
	Gloss  string   // short definition
	Base   BaseType // unique-beginner category (see basetypes.go)

	rels map[RelType][]string // relation → ordered target synset IDs
}

// CanonicalLemma returns the first (preferred) lemma of the synset.
func (s *Synset) CanonicalLemma() string {
	if len(s.Lemmas) == 0 {
		return ""
	}
	return s.Lemmas[0]
}

// HasLemma reports whether the synset contains the (normalised) lemma.
func (s *Synset) HasLemma(lemma string) bool {
	lemma = NormalizeLemma(lemma)
	for _, l := range s.Lemmas {
		if l == lemma {
			return true
		}
	}
	return false
}

// Related returns the IDs of synsets reachable from s via rel, in insertion
// order. The returned slice must not be modified.
func (s *Synset) Related(rel RelType) []string { return s.rels[rel] }

// String renders the synset compactly for diagnostics.
func (s *Synset) String() string {
	return fmt.Sprintf("%s{%s}", s.ID, strings.Join(s.Lemmas, ","))
}

// WordNet is the mutable lexical database. It is safe for concurrent use:
// Step 3 of the integration merges the domain ontology into it while the
// QA search phase reads it.
type WordNet struct {
	mu      sync.RWMutex
	synsets map[string]*Synset
	// index maps "lemma|pos" to synset IDs in sense order (most frequent
	// sense first, mirroring WordNet's sense ranking).
	index map[string][]string
}

// New returns an empty lexical database.
func New() *WordNet {
	return &WordNet{
		synsets: make(map[string]*Synset),
		index:   make(map[string][]string),
	}
}

// NormalizeLemma lower-cases a lemma and collapses interior whitespace so
// multi-word lemmas compare reliably ("Kennedy  International Airport" →
// "kennedy international airport").
func NormalizeLemma(lemma string) string {
	return strings.Join(strings.Fields(strings.ToLower(lemma)), " ")
}

func indexKey(lemma string, pos POS) string {
	return NormalizeLemma(lemma) + "|" + string(pos)
}

// AddSynset creates a synset. It returns an error if the ID already exists
// or no lemma is given.
func (w *WordNet) AddSynset(id string, pos POS, base BaseType, gloss string, lemmas ...string) (*Synset, error) {
	if len(lemmas) == 0 {
		return nil, fmt.Errorf("wordnet: synset %q needs at least one lemma", id)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.synsets[id]; dup {
		return nil, fmt.Errorf("wordnet: duplicate synset id %q", id)
	}
	s := &Synset{
		ID:    id,
		POS:   pos,
		Gloss: gloss,
		Base:  base,
		rels:  make(map[RelType][]string),
	}
	for _, l := range lemmas {
		l = NormalizeLemma(l)
		if l == "" {
			continue
		}
		s.Lemmas = append(s.Lemmas, l)
		w.index[indexKey(l, pos)] = append(w.index[indexKey(l, pos)], id)
	}
	if len(s.Lemmas) == 0 {
		return nil, fmt.Errorf("wordnet: synset %q has only empty lemmas", id)
	}
	w.synsets[id] = s
	return s, nil
}

// AddLemma adds a synonym to an existing synset — the operation the paper
// performs when it enriches "Kennedy International Airport" with the new
// term "JFK". Adding an existing lemma is a no-op.
func (w *WordNet) AddLemma(synsetID, lemma string) error {
	lemma = NormalizeLemma(lemma)
	if lemma == "" {
		return fmt.Errorf("wordnet: empty lemma")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.synsets[synsetID]
	if !ok {
		return fmt.Errorf("wordnet: unknown synset %q", synsetID)
	}
	for _, l := range s.Lemmas {
		if l == lemma {
			return nil
		}
	}
	s.Lemmas = append(s.Lemmas, lemma)
	w.index[indexKey(lemma, s.POS)] = append(w.index[indexKey(lemma, s.POS)], synsetID)
	return nil
}

// Relate records rel(from → to) and its inverse. Both synsets must exist.
// Duplicate edges are ignored.
func (w *WordNet) Relate(from string, rel RelType, to string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	fs, ok := w.synsets[from]
	if !ok {
		return fmt.Errorf("wordnet: unknown synset %q", from)
	}
	ts, ok := w.synsets[to]
	if !ok {
		return fmt.Errorf("wordnet: unknown synset %q", to)
	}
	addEdge(fs, rel, to)
	if inv, ok := inverseRel[rel]; ok {
		addEdge(ts, inv, from)
	}
	return nil
}

func addEdge(s *Synset, rel RelType, target string) {
	for _, t := range s.rels[rel] {
		if t == target {
			return
		}
	}
	s.rels[rel] = append(s.rels[rel], target)
}

// Synset returns the synset with the given ID, or nil.
func (w *WordNet) Synset(id string) *Synset {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.synsets[id]
}

// Lookup returns the synsets containing the lemma with the given POS, in
// sense order. A nil slice means the lemma is unknown — the situation the
// paper handles in Step 3 by adding new concepts.
func (w *WordNet) Lookup(lemma string, pos POS) []*Synset {
	w.mu.RLock()
	defer w.mu.RUnlock()
	ids := w.index[indexKey(lemma, pos)]
	out := make([]*Synset, 0, len(ids))
	for _, id := range ids {
		out = append(out, w.synsets[id])
	}
	return out
}

// LookupAnyPOS returns synsets for the lemma across all parts of speech,
// nouns first.
func (w *WordNet) LookupAnyPOS(lemma string) []*Synset {
	var out []*Synset
	for _, pos := range [...]POS{Noun, Verb, Adjective, Adverb} {
		out = append(out, w.Lookup(lemma, pos)...)
	}
	return out
}

// FirstSense returns the most frequent sense of the lemma for a POS, or
// nil when unknown.
func (w *WordNet) FirstSense(lemma string, pos POS) *Synset {
	ss := w.Lookup(lemma, pos)
	if len(ss) == 0 {
		return nil
	}
	return ss[0]
}

// Size returns the number of synsets.
func (w *WordNet) Size() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.synsets)
}

// Synsets returns all synset IDs in sorted order (for deterministic
// iteration in reports and tests).
func (w *WordNet) Synsets() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	ids := make([]string, 0, len(w.synsets))
	for id := range w.synsets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// HasLemma reports whether any synset contains the lemma (any POS).
func (w *WordNet) HasLemma(lemma string) bool {
	return len(w.LookupAnyPOS(lemma)) > 0
}
