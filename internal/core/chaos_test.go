package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dwqa/internal/engine"
	"dwqa/internal/store"
)

// The chaos property test: a durable pipeline serving a concurrent
// ask/feed/snapshot workload while the filesystem underneath it fails on
// a random (but seed-deterministic) schedule. The properties under test:
//
//  1. No panic escapes the serving layer.
//  2. Every response is either byte-identical to a sequential oracle or
//     one of the explicit contracted outcomes — shed, deadline expiry,
//     or degraded read-only mode. Never silent corruption.
//  3. Every WAL append failure surfaces as degraded mode; none are
//     swallowed.
//  4. Whatever the storm leaves on disk, a clean restart recovers, still
//     serves the oracle, and a re-feed converges to exactly the state a
//     clean sequential run would have produced.
//
// Run under -race: the schedule's delay faults widen the interleaving
// space the detector explores.

// chaosConfig is recoveryConfig plus serving limits, so the storm
// exercises the admission gate and deadlines, not just the fault FS.
func chaosConfig() Config {
	cfg := recoveryConfig()
	cfg.Engine = engine.Config{
		Workers:     4,
		MaxInflight: 4,
		MaxQueue:    2,
		// Generous deadlines: expiry is an allowed outcome, not a goal —
		// the deadline unit tests live in the engine package.
		AskTimeout:     10 * time.Second,
		HarvestTimeout: 60 * time.Second,
	}
	return cfg
}

// stableChaosQuestions returns the feed-invariant workload the oracle is
// built over: factoid answers come from the passage index (Step 5 feeds
// touch only the warehouse) and the analytic ones aggregate the
// LastMinuteSales fact, which the weather harvest never loads into.
func stableChaosQuestions(p *Pipeline) []string {
	qs := append([]string{}, p.WeatherQuestions()...)
	return append(qs,
		"Total last-minute revenue per destination city in January",
		"How many tickets were sold to Barcelona in January of 2004?",
		"Number of flights per departure airport",
	)
}

// renderAskResult flattens an engine answer — factoid trace or analytic
// plan+result — into the byte string compared against the oracle.
func renderAskResult(r engine.AskResult) string {
	if r.OLAP != nil {
		return r.OLAP.PlanString() + "\n" + r.OLAP.Result.Format()
	}
	return r.Result.Trace().Format()
}

func TestChaosServingUnderFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm: skipped in -short mode")
	}
	cfg := chaosConfig()

	// The convergence oracle: a clean sequential run of the full
	// pipeline. Every trial's recovered, re-fed state must match it
	// byte for byte.
	ref, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	wantFingerprint := answerFingerprint(t, ref)

	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosTrial(t, cfg, seed, wantFingerprint)
		})
	}
}

func runChaosTrial(t *testing.T, cfg Config, seed int64, wantFingerprint string) {
	dir := t.TempDir()
	ffs := store.NewFaultFS(store.OS()) // disarmed: boot is clean
	p, info, err := OpenPipelineFS(cfg, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}

	// Pre-storm sequential oracle over the feed-invariant questions.
	stable := stableChaosQuestions(p)
	oracle := make(map[string]string, len(stable))
	for _, q := range stable {
		r := eng.Ask(context.Background(), q)
		if r.Err != nil {
			t.Fatalf("pre-storm ask %q: %v", q, r.Err)
		}
		oracle[q] = renderAskResult(r)
	}

	ffs.Arm(store.RandomSchedule(seed, 60, 0.15)...)

	var (
		wg            sync.WaitGroup
		oracleMatches atomic.Int64
		shedOrExpired atomic.Int64
		degradedSeen  atomic.Int64
		feedsOK       atomic.Int64
	)

	// Askers: every answer must be byte-identical to the oracle or an
	// explicit shed/expiry — nothing in between.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := stable[(w*13+i)%len(stable)]
				r := eng.Ask(context.Background(), q)
				switch {
				case r.Err == nil:
					if got := renderAskResult(r); got != oracle[q] {
						t.Errorf("seed %d: ask %q diverged from oracle:\n got: %q\nwant: %q",
							seed, q, got, oracle[q])
						return
					}
					oracleMatches.Add(1)
				case errors.Is(r.Err, engine.ErrShed),
					errors.Is(r.Err, context.DeadlineExceeded):
					shedOrExpired.Add(1)
				default:
					t.Errorf("seed %d: ask %q: uncontracted error: %v", seed, q, r.Err)
					return
				}
			}
		}(w)
	}

	// Feeders: WAL faults latch degraded read-only mode; the feeder
	// doubles as the operator who clears the latch and retries.
	weather := p.WeatherQuestions()
	for f := 0; f < 2; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				lo := ((f*6 + i) * 2) % len(weather)
				hi := lo + 2
				if hi > len(weather) {
					hi = len(weather)
				}
				_, _, err := eng.HarvestAll(context.Background(), weather[lo:hi])
				switch {
				case err == nil:
					feedsOK.Add(1)
				case errors.Is(err, engine.ErrDegraded):
					degradedSeen.Add(1)
					eng.ClearDegraded()
				case errors.Is(err, engine.ErrShed),
					errors.Is(err, context.DeadlineExceeded):
					// retryable, nothing latched
				default:
					t.Errorf("seed %d: feed: uncontracted error: %v", seed, err)
					return
				}
			}
		}(f)
	}

	// Snapshotter: publishes ride the bounded retry/backoff loop. A
	// failed publish is a contracted outcome; a corrupted one is not —
	// the restart check below is what holds that line.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			_, _ = eng.SnapshotTo()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	walErrors := p.Store().WALErrors()
	ffs.Disarm()
	t.Logf("seed %d: faults fired=%d asks ok=%d shed/expired=%d feeds ok=%d degraded=%d wal errors=%d",
		seed, ffs.Fired(), oracleMatches.Load(), shedOrExpired.Load(),
		feedsOK.Load(), degradedSeen.Load(), walErrors)

	// Property 3: a WAL append failure must have surfaced as degraded
	// mode to some feeder, never been swallowed.
	if walErrors > 0 && degradedSeen.Load() == 0 {
		t.Errorf("seed %d: %d WAL errors but degraded mode was never observed", seed, walErrors)
	}
	if oracleMatches.Load() == 0 {
		t.Errorf("seed %d: no ask succeeded during the storm; the trial is vacuous", seed)
	}

	// Disk healthy again: the engine must still serve the exact
	// pre-storm answers, whatever mode the storm left it in.
	eng.ClearDegraded()
	for _, q := range stable {
		r := eng.Ask(context.Background(), q)
		if r.Err != nil {
			t.Fatalf("seed %d: post-storm ask %q: %v", seed, q, r.Err)
		}
		if got := renderAskResult(r); got != oracle[q] {
			t.Fatalf("seed %d: post-storm ask %q diverged from oracle", seed, q)
		}
	}

	// Property 4 — crash and restart. The WAL handle may be poisoned by
	// a failed rollback, so Close may error; the bytes on disk are what
	// recovery is judged on.
	_ = p.Store().Close()

	p2, info2, err := OpenPipeline(cfg, dir)
	if err != nil {
		t.Fatalf("seed %d: reopening after storm: %v", seed, err)
	}
	defer closePipeline(t, p2)
	if info2.WALRepaired > 0 {
		t.Logf("seed %d: recovery dropped %d torn WAL bytes", seed, info2.WALRepaired)
	}
	eng2, err := p2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range stable {
		r := eng2.Ask(context.Background(), q)
		if r.Err != nil {
			t.Fatalf("seed %d: recovered ask %q: %v", seed, q, r.Err)
		}
		if got := renderAskResult(r); got != oracle[q] {
			t.Fatalf("seed %d: recovered ask %q diverged from oracle:\n got: %q\nwant: %q",
				seed, q, got, oracle[q])
		}
	}

	// Re-feed to convergence: the first full feed loads whatever the
	// storm lost; a second must change nothing (the dedup state the
	// feeds' idempotence rests on survived the crash).
	if _, err := p2.Step5FeedWarehouse(p2.WeatherQuestions()); err != nil {
		t.Fatalf("seed %d: re-feed after recovery: %v", seed, err)
	}
	members1, rows1 := p2.StateCounts()
	if _, err := p2.Step5FeedWarehouse(p2.WeatherQuestions()); err != nil {
		t.Fatalf("seed %d: second re-feed: %v", seed, err)
	}
	if members2, rows2 := p2.StateCounts(); members2 != members1 || rows2 != rows1 {
		t.Errorf("seed %d: second feed changed state: members %d→%d rows %d→%d",
			seed, members1, members2, rows1, rows2)
	}

	if got := answerFingerprint(t, p2); got != wantFingerprint {
		t.Errorf("seed %d: recovered+re-fed state diverged from the clean sequential run", seed)
	}
}
