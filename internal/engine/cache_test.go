package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dwqa/internal/qa"
)

func TestNormalizeQuestion(t *testing.T) {
	cases := []struct{ in, want string }{
		{"What is  the \t weather?", "What is the weather"},
		{"What is the weather", "What is the weather"},
		{"  padded   question ?  ", "padded question"},
		{"Really?!", "Really"},
		// Case is preserved: the analysis pipeline is case-sensitive.
		{"Weather in El Prat?", "Weather in El Prat"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeQuestion(c.in); got != c.want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func res(i int) cachedAnswer {
	return cachedAnswer{qa: &qa.Result{Candidates: []qa.Answer{{Score: float64(i)}}}}
}

func TestAnswerCacheLRU(t *testing.T) {
	c := newAnswerCache(2)
	c.put("a", res(1), 0, nil)
	c.put("b", res(2), 0, nil)
	if _, ok, _ := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", res(3), 0, nil)
	if _, ok, _ := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok, _ := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok, _ := c.get("c"); !ok {
		t.Fatal("c should be cached")
	}
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	hits, misses, _ := c.counters()
	if hits != 3 || misses != 1 {
		t.Errorf("counters = (%d hits, %d misses), want (3, 1)", hits, misses)
	}
}

func TestAnswerCachePutExistingMovesToFront(t *testing.T) {
	c := newAnswerCache(2)
	c.put("a", res(1), 0, nil)
	c.put("b", res(2), 0, nil)
	c.put("a", res(10), 0, nil) // refresh value and recency
	c.put("c", res(3), 0, nil)  // evicts b, not a
	if got, ok, _ := c.get("a"); !ok || got.qa.Candidates[0].Score != 10 {
		t.Fatalf("a = %+v (ok=%v), want refreshed entry", got, ok)
	}
	if _, ok, _ := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestAnswerCacheFlush(t *testing.T) {
	c := newAnswerCache(8)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("q%d", i), res(i), 0, nil)
	}
	c.flush()
	if n := c.len(); n != 0 {
		t.Fatalf("len after flush = %d, want 0", n)
	}
	if _, ok, _ := c.get("q0"); ok {
		t.Fatal("entries must not survive a flush")
	}
}

// TestAnswerCacheStalePutDropped pins the feed-invalidation race fix: a
// result computed before a flush (an older epoch) must not be inserted
// after it.
func TestAnswerCacheStalePutDropped(t *testing.T) {
	c := newAnswerCache(8)
	_, _, epoch := c.get("q")      // miss; observe the pre-feed epoch
	c.flush()                      // a warehouse feed commits meanwhile
	c.put("q", res(1), epoch, nil) // late insert of the pre-feed answer
	if _, ok, _ := c.get("q"); ok {
		t.Fatal("stale pre-flush result must not enter the cache")
	}
	// A put at the current epoch works again.
	_, _, epoch = c.get("q")
	c.put("q", res(2), epoch, nil)
	if _, ok, _ := c.get("q"); !ok {
		t.Fatal("current-epoch put should be stored")
	}
}

// TestCacheFlushRaceNeverServesStaleAnswer drives the full engine ask
// path (cache get → compute → epoch-checked put) against concurrent
// feed-flushes under the race detector. The invariant is the epoch
// guard's reason to exist: once a flush for warehouse state S has
// completed, no Ask may ever serve an answer computed against state
// older than S — a stale answer computed before the feed must not be
// resurrected by a late cache insert after it.
func TestCacheFlushRaceNeverServesStaleAnswer(t *testing.T) {
	// A bare engine: the answer function reads a counter standing in for
	// the warehouse state, so staleness is observable in the answer.
	var state atomic.Int64
	e := &Engine{
		cache:      newAnswerCache(64),
		workers:    4,
		gate:       newGate(-1, 0),
		askTimeout: -1,
		met:        newEngineMetrics(false),
	}
	e.answerFn = func(string) (*qa.Result, qa.Timings, error) {
		return &qa.Result{Candidates: []qa.Answer{{Score: float64(state.Load())}}}, qa.Timings{}, nil
	}

	// lastFlushed is the newest state any completed flush covered:
	// ordered state bump → flush → publish, exactly HarvestAll's commit
	// → InvalidateCache sequence.
	var lastFlushed atomic.Int64
	const feeds = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < feeds; i++ {
			v := state.Add(1)
			e.InvalidateCache()
			lastFlushed.Store(v)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			questions := []string{"alpha?", "beta?", "gamma?", "delta?"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				floor := lastFlushed.Load()
				r := e.Ask(context.Background(), questions[i%len(questions)])
				if r.Err != nil {
					t.Errorf("ask: %v", r.Err)
					return
				}
				if got := int64(r.Result.Candidates[0].Score); got < floor {
					t.Errorf("served state %d after a flush for state %d — pre-feed answer resurrected", got, floor)
					return
				}
			}
		}(w)
	}
	<-done
	wg.Wait()

	// Quiescent check: the final flush has propagated, a fresh ask must
	// see the final state and the cache must serve it consistently.
	r := e.Ask(context.Background(), "omega?")
	if got := int64(r.Result.Candidates[0].Score); got != feeds {
		t.Errorf("post-storm answer = state %d, want %d", got, feeds)
	}
	if r2 := e.Ask(context.Background(), "omega?"); !r2.Cached || int64(r2.Result.Candidates[0].Score) != feeds {
		t.Errorf("cached post-storm answer = (%v, cached=%v), want state %d from cache",
			r2.Result.Candidates[0].Score, r2.Cached, feeds)
	}
}

func TestAnswerCacheDisabled(t *testing.T) {
	c := newAnswerCache(-1)
	c.put("a", res(1), 0, nil)
	if _, ok, _ := c.get("a"); ok {
		t.Fatal("disabled cache must never hit")
	}
	if n := c.len(); n != 0 {
		t.Fatalf("len = %d, want 0", n)
	}
	// A disabled cache reports no traffic at all — a get is not a "miss"
	// when there is nothing to hit, so /healthz can distinguish "cache
	// off" from "cache cold" instead of showing a perpetual 0% hit rate.
	if hits, misses, _ := c.counters(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted traffic: %d hits, %d misses", hits, misses)
	}
	if c.enabled() {
		t.Fatal("cap <= 0 must report disabled")
	}
}
