package ir

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestCompressRoundTripEdgeCases round-trips the wire encoding over the
// shapes that stress the delta/varint format: singletons, id 0, maximal
// gaps, and multi-byte tfs.
func TestCompressRoundTripEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		posts []Posting
	}{
		{"empty", nil},
		{"single posting", []Posting{{ID: 42, TF: 3}}},
		{"single posting id zero", []Posting{{ID: 0, TF: 1}}},
		{"single posting max id", []Posting{{ID: math.MaxInt32 - 1, TF: 1}}},
		{"max gap from start", []Posting{{ID: 0, TF: 1}, {ID: math.MaxInt32 - 1, TF: 1}}},
		{"adjacent ids", []Posting{{ID: 5, TF: 1}, {ID: 6, TF: 2}, {ID: 7, TF: 1}}},
		{"large tf", []Posting{{ID: 1, TF: math.MaxInt32}, {ID: 2, TF: 1 << 20}}},
		{"varint width boundaries", []Posting{
			{ID: 126, TF: 127}, {ID: 127 + 126, TF: 128}, {ID: 1<<14 + 300, TF: 1 << 14},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := CompressPostings(tc.posts)
			got := w.DecodePostings()
			if len(tc.posts) == 0 {
				if w.N != 0 || w.Enc != nil || len(got) != 0 {
					t.Fatalf("empty list encoded to %d/%v, decoded %v", w.N, w.Enc, got)
				}
				return
			}
			if !reflect.DeepEqual(got, tc.posts) {
				t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, tc.posts)
			}
			// The wire form must satisfy its own validator.
			limit := int(tc.posts[len(tc.posts)-1].ID) + 1
			last, err := checkWirePostings(w, limit)
			if err != nil {
				t.Fatalf("checkWirePostings rejects valid encoding: %v", err)
			}
			if last != tc.posts[len(tc.posts)-1].ID {
				t.Fatalf("checkWirePostings lastID = %d, want %d", last, tc.posts[len(tc.posts)-1].ID)
			}
		})
	}
}

// TestPostingListThresholdCrossing feeds a list one posting at a time
// across the flush threshold and checks that (a) the cursor always yields
// the full sequence and (b) the exported bytes equal a one-shot encode —
// the canonical-wire-form property incremental flushing must preserve.
func TestPostingListThresholdCrossing(t *testing.T) {
	var pl postingList
	var want []Posting
	for i := 0; i < 3*encodeThreshold+5; i++ {
		id := int32(i*7 + i%3) // uneven gaps
		tf := int32(i%5 + 1)
		pl.add(id, tf)
		want = append(want, Posting{ID: id, TF: tf})

		if pl.count() != len(want) {
			t.Fatalf("after %d adds: count = %d", len(want), pl.count())
		}
		var got []Posting
		for c := pl.cursor(); ; {
			id, tf, ok := c.next()
			if !ok {
				break
			}
			got = append(got, Posting{ID: id, TF: tf})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after %d adds cursor diverges:\n got %+v\nwant %+v", len(want), got, want)
		}
		if w, oneShot := pl.export(), CompressPostings(want); w.N != oneShot.N || !bytes.Equal(w.Enc, oneShot.Enc) {
			t.Fatalf("after %d adds export is not canonical (encN=%d raw=%d)", len(want), pl.encN, len(pl.raw))
		}
	}
	// The list must actually have flushed at least once and hold a raw
	// tail right now — otherwise the loop above tested nothing hybrid.
	if pl.encN == 0 || len(pl.raw) == 0 {
		t.Fatalf("test never exercised the hybrid state: encN=%d raw=%d", pl.encN, len(pl.raw))
	}
}

// TestSnapshotMixedRawCompressedLists snapshots an index whose lists span
// both storage regimes — rare terms still raw, a frequent term with an
// encoded prefix — and checks the restored index re-exports byte-identical
// postings and answers identically.
func TestSnapshotMixedRawCompressedLists(t *testing.T) {
	src := NewIndex(WithPassageSize(1), WithStride(1))
	// "common" appears in every sentence → its passage list crosses the
	// flush threshold. Each "rareN" appears exactly once → single-posting
	// raw lists.
	var sb strings.Builder
	for i := 0; i < 2*encodeThreshold; i++ {
		sb.WriteString("common weather rare")
		for j := 0; j <= i%4; j++ {
			sb.WriteByte('a' + byte(i%26))
		}
		sb.WriteString(" report. ")
	}
	if err := src.Add(Document{URL: "http://w/mix", Text: sb.String()}); err != nil {
		t.Fatal(err)
	}

	// Verify the corpus produced both regimes before snapshotting.
	src.mu.RLock()
	var sawEncoded, sawRawOnly bool
	for i := range src.postings {
		if src.postings[i].encN > 0 {
			sawEncoded = true
		}
		if src.postings[i].encN == 0 && len(src.postings[i].raw) > 0 {
			sawRawOnly = true
		}
	}
	src.mu.RUnlock()
	if !sawEncoded || !sawRawOnly {
		t.Fatalf("corpus does not mix regimes: encoded=%v rawOnly=%v", sawEncoded, sawRawOnly)
	}

	snap := src.Export()
	dst := NewIndex()
	if err := dst.Import(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Export(), snap) {
		t.Fatal("mixed-regime snapshot does not re-export byte-identical")
	}
	for _, q := range []string{"common report", "weather", "rarea"} {
		terms := QueryTerms(q)
		if got, want := dst.Search(terms, 8), src.Search(terms, 8); !reflect.DeepEqual(got, want) {
			t.Fatalf("Search(%q) diverges after mixed-regime restore:\n got %+v\nwant %+v", q, got, want)
		}
	}

	// Growth after restore: adds append to the adopted wire bytes without
	// corrupting them, and both indexes keep agreeing.
	extra := Document{URL: "http://w/more", Text: "common weather continues. rareb returns again."}
	if err := src.Add(extra); err != nil {
		t.Fatal(err)
	}
	if err := dst.Add(extra); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Export(), src.Export()) {
		t.Fatal("post-restore growth diverges from the eager index")
	}
}
