package core

import (
	"strings"
	"testing"

	"dwqa/internal/dw"
)

func salesByCityMonth() dw.Query {
	return dw.Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Count,
		GroupBy: []dw.LevelSel{
			{Role: "Destination", Level: "City"},
			{Role: "Date", Level: "Month"},
		},
	}
}

func TestQuestionsFromQuery(t *testing.T) {
	p := runAll(t)
	gqs, err := p.QuestionsFromQuery(salesByCityMonth())
	if err != nil {
		t.Fatalf("QuestionsFromQuery: %v", err)
	}
	// 6 destination cities × 3 months.
	if len(gqs) != 18 {
		t.Fatalf("generated %d questions, want 18", len(gqs))
	}
	seen := map[string]bool{}
	for _, g := range gqs {
		if seen[g.Question] {
			t.Errorf("duplicate question %q", g.Question)
		}
		seen[g.Question] = true
		if !strings.HasPrefix(g.Question, "What is the weather like in ") {
			t.Errorf("bad phrasing: %q", g.Question)
		}
		if g.City == "" || len(g.Month) != 7 {
			t.Errorf("bad cell: %+v", g)
		}
	}
	// The ontology prefers airport names — El Prat for Barcelona.
	found := false
	for _, g := range gqs {
		if g.City == "Barcelona" && strings.Contains(g.Question, "El Prat") {
			found = true
		}
	}
	if !found {
		t.Error("Barcelona questions should name the airport El Prat via the ontology")
	}
}

func TestQuestionsFromQueryWithoutCityGroup(t *testing.T) {
	p := runAll(t)
	q := dw.Query{Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum}
	if _, err := p.QuestionsFromQuery(q); err == nil {
		t.Error("query without a City grouping should be rejected")
	}
}

func TestQuestionsFromQueryCityOnly(t *testing.T) {
	// Without a Date grouping the generator covers the configured months.
	p := runAll(t)
	q := dw.Query{
		Fact: "LastMinuteSales", Measure: "Price", Agg: dw.Sum,
		GroupBy: []dw.LevelSel{{Role: "Destination", Level: "City"}},
	}
	gqs, err := p.QuestionsFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(gqs) != 18 {
		t.Errorf("generated %d, want 6 cities × 3 months = 18", len(gqs))
	}
}

func TestContextualizeQueryClosedLoop(t *testing.T) {
	// Run steps 1-4 only, then let the OLAP query itself drive Step 5.
	p := newPipeline(t)
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Warehouse.FactCount("Weather") != 0 {
		t.Fatal("weather fact should start empty")
	}
	results, err := p.ContextualizeQuery(salesByCityMonth())
	if err != nil {
		t.Fatalf("ContextualizeQuery: %v", err)
	}
	if len(results) != 18 {
		t.Errorf("contextualised %d cells, want 18", len(results))
	}
	if p.Warehouse.FactCount("Weather") < 200 {
		t.Errorf("closed loop loaded %d weather rows, want a substantial feed",
			p.Warehouse.FactCount("Weather"))
	}
	// The original query's cells now have joinable context.
	fed, err := p.Warehouse.Execute(dw.Query{
		Fact: "Weather", Measure: "TempC", Agg: dw.Count,
		GroupBy: []dw.LevelSel{{Role: "City", Level: "City"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Rows) < 5 {
		t.Errorf("weather fed for %d cities, want >= 5", len(fed.Rows))
	}
	if err := p.require(5); err != nil {
		t.Errorf("closed loop should complete step 5: %v", err)
	}
}

func TestContextualizeRequiresStep4(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.ContextualizeQuery(salesByCityMonth()); err == nil {
		t.Error("ContextualizeQuery before step 4 accepted")
	}
}
