package ir

import (
	"fmt"
	"strings"
	"testing"
)

func testDocs() []Document {
	return []Document{
		{URL: "http://weather.example/bcn-jan-2004", Text: "Monday, January 31, 2004.\n" +
			"Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today.\n" +
			"Sunday, January 30, 2004.\n" +
			"Barcelona Weather: Temperature 7º C around 44.6 F Light rain.\n"},
		{URL: "http://news.example/crisis", Text: "The financial crisis hit markets in New York. " +
			"Analysts published documents during the first quarter of 1998. " +
			"The reports mention terms like recession and inflation."},
		{URL: "http://music.example/elprat", Text: "El Prat is a Spanish musical group. " +
			"The band played in Madrid last summer. Critics praised their new album."},
		{URL: "http://cine.example/wayne", Text: "John Wayne was an American film actor. " +
			"He starred in westerns for decades. The actor won an Academy Award."},
	}
}

func newTestIndex(t *testing.T, opts ...Option) *Index {
	t.Helper()
	ix := NewIndex(opts...)
	if err := ix.AddAll(testDocs()); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	return ix
}

func TestAddRejectsEmpty(t *testing.T) {
	ix := NewIndex()
	if err := ix.Add(Document{URL: "x", Text: "   "}); err == nil {
		t.Error("empty document accepted")
	}
	if err := ix.AddAll([]Document{{URL: "a", Text: ""}, {URL: "b", Text: "Valid text here."}}); err == nil {
		t.Error("AddAll should report the failed document")
	} else if !strings.Contains(err.Error(), "1 documents failed") {
		t.Errorf("AddAll error = %v", err)
	}
}

func TestCounts(t *testing.T) {
	ix := newTestIndex(t)
	if got := ix.DocCount(); got != 4 {
		t.Errorf("DocCount = %d, want 4", got)
	}
	if ix.PassageCount() < 4 {
		t.Errorf("PassageCount = %d, want >= 4", ix.PassageCount())
	}
	if ix.DF("temperature") != 1 {
		t.Errorf("DF(temperature) = %d, want 1", ix.DF("temperature"))
	}
	if ix.DF("actor") != 1 {
		t.Errorf("DF(actor) = %d, want 1", ix.DF("actor"))
	}
	if ix.DF("zzz") != 0 {
		t.Errorf("DF(zzz) = %d, want 0", ix.DF("zzz"))
	}
}

func TestQueryTerms(t *testing.T) {
	terms := QueryTerms("What is the temperature in January of 2004 in El Prat?")
	want := map[string]bool{"temperature": true, "january": true, "2004": true, "el": true, "prat": true}
	for _, term := range terms {
		if !want[term] {
			t.Errorf("unexpected query term %q", term)
		}
		delete(want, term)
	}
	for term := range want {
		t.Errorf("missing query term %q", term)
	}
}

// TestQueryTermsSoleNormalizer pins the unified normalisation contract:
// QueryTerms is the only place query text is lowercased, deduplicated and
// stopword-filtered — Search spends no map on it — so mixed-case and
// duplicated input must come out normalised there, and feeding its output
// to Search must match hand-normalised terms exactly.
func TestQueryTermsSoleNormalizer(t *testing.T) {
	terms := QueryTerms("TEMPERATURE Temperature the temperature in BARCELONA Barcelona")
	want := []string{"temperature", "barcelona"}
	if len(terms) != len(want) {
		t.Fatalf("QueryTerms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("QueryTerms = %v, want %v", terms, want)
		}
	}

	ix := newTestIndex(t)
	got := ix.Search(terms, 5)
	norm := ix.Search([]string{"temperature", "barcelona"}, 5)
	if len(got) != len(norm) {
		t.Fatalf("QueryTerms path found %d passages, normalised terms %d", len(got), len(norm))
	}
	for i := range got {
		if got[i].DocURL != norm[i].DocURL || got[i].SentStart != norm[i].SentStart || got[i].Score != norm[i].Score {
			t.Errorf("result %d diverges: %+v vs %+v", i, got[i], norm[i])
		}
	}

	// Search itself no longer lowercases: un-normalised terms are the
	// caller's bug, pinned here so the contract stays explicit.
	if got := ix.Search([]string{"TEMPERATURE"}, 5); len(got) != 0 {
		t.Errorf("Search lowercased a term: %d results for \"TEMPERATURE\"", len(got))
	}
	if got := ix.SearchDocuments([]string{"TEMPERATURE"}, 5); len(got) != 0 {
		t.Errorf("SearchDocuments lowercased a term: %d results", len(got))
	}
}

func TestSearchFindsWeatherPassage(t *testing.T) {
	ix := newTestIndex(t)
	got := ix.Search(QueryTerms("temperature january 2004 barcelona"), 3)
	if len(got) == 0 {
		t.Fatal("no passages found")
	}
	if got[0].DocURL != "http://weather.example/bcn-jan-2004" {
		t.Errorf("top passage from %s, want the weather page", got[0].DocURL)
	}
	if !strings.Contains(got[0].Text, "Temperature") {
		t.Errorf("passage text lost content: %q", got[0].Text)
	}
	if got[0].Score <= 0 {
		t.Error("top passage should have positive score")
	}
}

func TestSearchRankingDiscriminates(t *testing.T) {
	ix := newTestIndex(t)
	// A music query must rank the music page first, not the weather page.
	got := ix.Search(QueryTerms("spanish musical group band album"), 4)
	if len(got) == 0 || got[0].DocURL != "http://music.example/elprat" {
		t.Fatalf("music query top = %+v", got)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ix := newTestIndex(t)
	if got := ix.Search(nil, 5); got != nil {
		t.Error("nil terms should return nil")
	}
	if got := ix.Search([]string{"temperature"}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.Search([]string{"zzzunknown"}, 5); len(got) != 0 {
		t.Error("unknown term should match nothing")
	}
	empty := NewIndex()
	if got := empty.Search([]string{"x"}, 5); got != nil {
		t.Error("empty index should return nil")
	}
}

func TestSearchDeterministic(t *testing.T) {
	ix := newTestIndex(t)
	a := ix.Search(QueryTerms("temperature barcelona"), 5)
	b := ix.Search(QueryTerms("temperature barcelona"), 5)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic result count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].DocURL != b[i].DocURL || a[i].SentStart != b[i].SentStart {
			t.Errorf("result %d differs between runs", i)
		}
	}
}

func TestSearchDocumentsBaseline(t *testing.T) {
	ix := newTestIndex(t)
	got := ix.SearchDocuments(QueryTerms("financial crisis 1998"), 2)
	if len(got) == 0 || got[0].URL != "http://news.example/crisis" {
		t.Fatalf("doc search top = %+v", got)
	}
	// The baseline returns the whole document, not a focused span.
	if !strings.Contains(got[0].Text, "recession") {
		t.Error("document mode should return full text")
	}
}

func TestPassageWindowing(t *testing.T) {
	// 10 numbered sentences, window 3, stride 1: the window containing
	// "seven" must include its neighbours.
	var b strings.Builder
	words := []string{"one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten"}
	for _, w := range words {
		fmt.Fprintf(&b, "Sentence %s mentions topic %s. ", w, w)
	}
	ix := NewIndex(WithPassageSize(3), WithStride(1))
	if err := ix.Add(Document{URL: "d", Text: b.String()}); err != nil {
		t.Fatal(err)
	}
	if got, want := ix.PassageCount(), 8; got != want {
		t.Errorf("PassageCount = %d, want %d (10 sentences, window 3, stride 1)", got, want)
	}
	res := ix.Search([]string{"seven"}, 1)
	if len(res) != 1 {
		t.Fatal("no result")
	}
	if !strings.Contains(res[0].Text, "seven") {
		t.Errorf("window missing the hit: %q", res[0].Text)
	}
	if n := res[0].SentEnd - res[0].SentStart; n != 3 {
		t.Errorf("window size = %d, want 3", n)
	}
}

// Property: every sentence of every document appears in at least one
// passage (full coverage regardless of stride).
func TestPassageCoverage(t *testing.T) {
	for _, stride := range []int{1, 2, 3, 8} {
		ix := NewIndex(WithPassageSize(3), WithStride(stride))
		if err := ix.AddAll(testDocs()); err != nil {
			t.Fatal(err)
		}
		covered := map[string]map[int]bool{}
		for _, p := range ix.AllPassages() {
			m, ok := covered[p.DocURL]
			if !ok {
				m = map[int]bool{}
				covered[p.DocURL] = m
			}
			for s := p.SentStart; s < p.SentEnd; s++ {
				m[s] = true
			}
		}
		for i := 0; i < ix.DocCount(); i++ {
			doc, _ := ix.Document(i)
			m := covered[doc.URL]
			for s := 0; ; s++ {
				if len(m) == 0 {
					t.Fatalf("stride %d: document %s has no passages", stride, doc.URL)
				}
				if s >= len(m) {
					break
				}
				if !m[s] {
					t.Errorf("stride %d: sentence %d of %s uncovered", stride, s, doc.URL)
				}
			}
		}
	}
}

func TestDocumentAccessor(t *testing.T) {
	ix := newTestIndex(t)
	if _, err := ix.Document(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := ix.Document(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	d, err := ix.Document(0)
	if err != nil || d.URL == "" {
		t.Errorf("Document(0) = %v, %v", d, err)
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix := newTestIndex(t)
	done := make(chan bool, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				ix.Search([]string{"temperature", "barcelona"}, 3)
			}
			done <- true
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	docs := testDocs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := NewIndex()
		for _, d := range docs {
			_ = ix.Add(d)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := NewIndex()
	for _, d := range testDocs() {
		_ = ix.Add(d)
	}
	terms := QueryTerms("temperature january 2004 barcelona")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(terms, 3)
	}
}
