package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Sentence is a contiguous span of analysed tokens plus its byte span in
// the original text. Sentences are the unit from which the IR-n substrate
// builds passages (footnote 6 of the paper: "each passage is formed by a
// number of consecutive sentences in the document").
type Sentence struct {
	Tokens []Token
	Start  int // byte offset of the first token
	End    int // byte offset one past the last token
}

// Text reconstructs a plain-text rendering of the sentence from its tokens.
func (s Sentence) Text() string {
	var b strings.Builder
	for i, t := range s.Tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// ContentLemmas returns the lemmas of content words in the sentence,
// lower-cased, stopwords removed.
func (s Sentence) ContentLemmas() []string {
	var out []string
	for _, t := range s.Tokens {
		if t.IsContentWord() && !IsStopword(t.Lemma) {
			out = append(out, t.Lemma)
		}
	}
	return out
}

// SplitSentences analyses text and groups the tokens into sentences.
// Boundaries are sentence-final punctuation (. ! ?) not inside a decimal
// number, and blank lines (which web page extraction produces between
// blocks). A lone newline also ends a sentence when the next line starts
// with a capital or digit — web weather pages are line-structured.
func SplitSentences(text string) []Sentence {
	toks := Analyze(text)
	var sents []Sentence
	start := 0
	// Sentences are capacity-clamped subslices of the single token slice
	// Analyze returned — the whole document's tokens live in one arena
	// allocation instead of one copy per sentence.
	flush := func(end int) {
		if end > start {
			seg := toks[start:end:end]
			sents = append(sents, Sentence{
				Tokens: seg,
				Start:  seg[0].Start,
				End:    seg[len(seg)-1].End,
			})
			start = end
		}
	}
	for i, t := range toks {
		if t.Tag == TagSENT {
			flush(i + 1)
			continue
		}
		// Newline-based boundary between this token and the next.
		if i+1 < len(toks) {
			gap := text[t.End:toks[i+1].Start]
			if strings.Count(gap, "\n") >= 2 {
				flush(i + 1)
				continue
			}
			if strings.Contains(gap, "\n") && startsUpperOrDigit(toks[i+1].Text) {
				flush(i + 1)
			}
		}
	}
	flush(len(toks))
	return sents
}

func startsUpperOrDigit(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsUpper(r) || unicode.IsDigit(r)
}
