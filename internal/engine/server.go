package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dwqa/internal/etl"
	"dwqa/internal/nl2olap"
	"dwqa/internal/qa"
	"dwqa/internal/sbparser"
	"dwqa/internal/store"
)

// Serving limits: oversized bodies are cut off at 413, oversized batches
// rejected at 422, rather than ballooning memory.
const (
	maxRequestBody = 1 << 20 // 1 MiB of JSON per request
	maxBatchSize   = 10_000  // questions per /ask/batch or /harvest call
)

// The Retry-After hint on 429 responses is derived from the engine's
// current load (Engine.RetryAfterSeconds): a queue one deadline deep
// tells clients to back off for one deadline, a deeper queue for
// proportionally longer.

// NewServer returns the HTTP JSON API over an engine:
//
//	POST /ask        {"question": "..."}        → one answer (factoid or,
//	                                              when classified analytic,
//	                                              the OLAP result table)
//	POST /ask/batch  {"questions": ["...",…]}   → answers in input order
//	POST /ask/olap   {"question": "..."}        → the analytic path only:
//	                                              compiled plan + table
//	POST /harvest    {"questions": ["...",…]}   → Step 5 feed (empty body
//	                                              or list = default workload)
//	GET  /trace?q=…                             → the paper's Table 1 trace
//	GET  /healthz                               → serving statistics
//	GET  /metrics                               → Prometheus text exposition
//	                                              of the engine's registry
//
// QA-level failures (a question no pattern matches) are reported per item
// in the JSON payload; transport and resilience failures use status
// codes (DESIGN.md §8):
//
//	413  request body over 1 MiB
//	422  batch over the question limit; /ask/olap non-analytic question
//	429  engine saturated, request shed (Retry-After tells when to retry)
//	403  read replica refused a feed (writes must go to the leader)
//	503  engine degraded read-only (feeds only; asks keep serving)
//	504  deadline expired — batch responses still carry the answers that
//	     finished in time, expired slots marked per item
//	500  a panic, recovered and confined to this request
//
// Every handler runs under the request's context, so client disconnects
// and server-side deadlines propagate into the engine.
//
// NewServer serves quietly (no access log); NewServerWith takes options.
func NewServer(e *Engine) http.Handler {
	return NewServerWith(e, ServerOptions{Quiet: true})
}

// ServerOptions configures the HTTP façade's logging.
type ServerOptions struct {
	// Logf receives the access-log and recovered-panic lines; nil
	// selects log.Printf.
	Logf func(format string, args ...any)
	// Quiet suppresses the per-request access log. Recovered panics are
	// logged regardless — a panic must never be silent.
	Quiet bool
}

// NewServerWith is NewServer with explicit logging options.
func NewServerWith(e *Engine, opts ServerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Question string `json:"question"`
		}
		if !decodeJSON(e, w, r, &req) {
			return
		}
		if req.Question == "" {
			httpError(e, w, http.StatusBadRequest, "missing question")
			return
		}
		res := e.Ask(r.Context(), req.Question)
		writeJSONStatus(e, w, askStatus([]AskResult{res}), askJSON(res))
	})
	mux.HandleFunc("POST /ask/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Questions []string `json:"questions"`
		}
		if !decodeJSON(e, w, r, &req) {
			return
		}
		if len(req.Questions) == 0 {
			httpError(e, w, http.StatusBadRequest, "missing questions")
			return
		}
		if len(req.Questions) > maxBatchSize {
			httpError(e, w, http.StatusUnprocessableEntity, fmt.Sprintf("batch of %d exceeds the %d-question limit", len(req.Questions), maxBatchSize))
			return
		}
		results := e.AskAll(r.Context(), req.Questions)
		out := struct {
			Results []askResponse `json:"results"`
		}{Results: make([]askResponse, len(results))}
		for i, res := range results {
			out.Results[i] = askJSON(res)
		}
		// A 504 or 500 batch still carries every completed answer; the
		// status tells the client the batch as a whole was cut short.
		writeJSONStatus(e, w, askStatus(results), out)
	})
	mux.HandleFunc("POST /ask/olap", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Question string `json:"question"`
		}
		if !decodeJSON(e, w, r, &req) {
			return
		}
		if req.Question == "" {
			httpError(e, w, http.StatusBadRequest, "missing question")
			return
		}
		ans, err := e.AskOLAP(r.Context(), req.Question)
		if err != nil {
			code := errStatus(err)
			if code == 0 || code == http.StatusOK {
				code = http.StatusUnprocessableEntity
			}
			if errors.Is(err, nl2olap.ErrFactoid) {
				// Still 422, but spell out where the question belongs.
				err = fmt.Errorf("%w; POST /ask serves factoid questions", err)
			}
			httpError(e, w, code, err.Error())
			return
		}
		writeJSON(w, toOLAPJSON(ans))
	})
	mux.HandleFunc("POST /harvest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Questions []string `json:"questions"`
		}
		// An empty body selects the default harvest workload.
		if !decodeJSONOptional(e, w, r, &req) {
			return
		}
		if len(req.Questions) > maxBatchSize {
			httpError(e, w, http.StatusUnprocessableEntity, fmt.Sprintf("batch of %d exceeds the %d-question limit", len(req.Questions), maxBatchSize))
			return
		}
		items, total, err := e.HarvestAll(r.Context(), req.Questions)
		if err != nil {
			code := errStatus(err)
			if code == 0 || code == http.StatusOK {
				code = http.StatusInternalServerError
			}
			if code == http.StatusGatewayTimeout && len(items) > 0 {
				// The deadline expired mid-harvest: nothing was committed
				// (the engine refuses partial feeds), but report how far
				// extraction got, per item, alongside the timeout.
				out := harvestJSON(e, items, nil)
				out.Error = err.Error()
				writeJSONStatus(e, w, code, out)
				return
			}
			httpError(e, w, code, err.Error())
			return
		}
		writeJSON(w, harvestJSON(e, items, total))
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		question := r.URL.Query().Get("q")
		if question == "" {
			// The paper's own Table 1 query.
			question = "What is the weather like in January of 2004 in El Prat?"
		}
		tr, err := e.Trace(r.Context(), question)
		if err != nil {
			code := errStatus(err)
			if code == 0 || code == http.StatusOK {
				code = http.StatusUnprocessableEntity
			}
			httpError(e, w, code, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tr.Format())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := e.Stats()
		status := "ok"
		if st.State != "ready" {
			status = st.State
		}
		writeJSON(w, struct {
			Status string `json:"status"`
			Stats
		}{Status: status, Stats: st})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = e.Metrics().WriteTo(w)
	})
	return requestMiddleware(e, opts, mux)
}

// requestID numbers every request the process serves, across all
// servers, so a panic line and its access line correlate.
var requestID atomic.Uint64

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// outcomeClass folds a response status into the outcome vocabulary the
// access log and the slow-query log share: what happened to the
// request, as the resilience layer saw it.
func outcomeClass(status int) string {
	switch {
	case status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status == http.StatusServiceUnavailable:
		return "degraded"
	case status == http.StatusForbidden:
		return "readonly"
	case status >= 400 && status < 500:
		return "client_error"
	default:
		return "error"
	}
}

// requestMiddleware is the request boundary: it stamps a request id,
// recovers panics that escape the engine's own worker-level nets
// (handler bugs, encoding panics) into a logged 500 for this one
// request instead of a dead process, and — unless Quiet — emits one
// structured access line per request. The panic response may land on a
// partially-written body; WriteHeader on a written response is a no-op
// and the client sees a truncated body — still strictly better than
// losing every other in-flight request.
func requestMiddleware(e *Engine, opts ServerOptions, next http.Handler) http.Handler {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				e.met.panicTotal.Inc()
				logf("req=%d panic recovered serving %s %s: %v", id, r.Method, r.URL.Path, rec)
				httpError(e, sw, http.StatusInternalServerError, fmt.Sprintf("internal error: panic: %v", rec))
			}
			if !opts.Quiet {
				status := sw.status
				if status == 0 {
					status = http.StatusOK
				}
				logf("req=%d %s %s status=%d outcome=%s dur=%s",
					id, r.Method, r.URL.Path, status, outcomeClass(status),
					time.Since(start).Round(time.Microsecond))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// errStatus maps an engine error to its transport status. 0 means the
// error is a per-item QA failure with no dedicated status (the handler
// picks its default).
func errStatus(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrReadOnlyReplica):
		return http.StatusForbidden
	case errors.Is(err, ErrDegraded), errors.Is(err, store.ErrWAL):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrPanic):
		return http.StatusInternalServerError
	}
	return 0
}

// askStatus folds a batch's per-item errors into one response status:
// shed and degraded outrank timeout (the request never ran), timeout
// outranks panic (the batch as a whole was cut short), panic outranks
// OK. Per-item QA failures leave the status 200 — they are answers.
func askStatus(results []AskResult) int {
	status := http.StatusOK
	for _, r := range results {
		switch errStatus(r.Err) {
		case http.StatusTooManyRequests:
			return http.StatusTooManyRequests
		case http.StatusServiceUnavailable:
			return http.StatusServiceUnavailable
		case http.StatusGatewayTimeout:
			status = http.StatusGatewayTimeout
		case http.StatusInternalServerError:
			if status == http.StatusOK {
				status = http.StatusInternalServerError
			}
		}
	}
	return status
}

// answerJSON is the wire form of one extracted answer.
type answerJSON struct {
	Text     string  `json:"text"`
	Rendered string  `json:"rendered"`
	Value    float64 `json:"value,omitempty"`
	HasValue bool    `json:"has_value,omitempty"`
	Unit     string  `json:"unit,omitempty"`
	Date     string  `json:"date,omitempty"`
	Location string  `json:"location,omitempty"`
	URL      string  `json:"url,omitempty"`
	Score    float64 `json:"score"`
}

// askResponse is the wire form of one answered question. Exactly one of
// Answer (factoid) and OLAP (analytic) is populated on success.
type askResponse struct {
	Question   string      `json:"question"`
	Answer     *answerJSON `json:"answer"` // null when nothing clears MinScore
	OLAP       *olapJSON   `json:"olap,omitempty"`
	Candidates int         `json:"candidates"`
	Passages   int         `json:"passages"`
	Cached     bool        `json:"cached"`
	Error      string      `json:"error,omitempty"`
}

// olapJSON is the wire form of one analytic answer: the compiled plan and
// its result table.
type olapJSON struct {
	Question string        `json:"question"`
	Category string        `json:"category"`
	Plan     string        `json:"plan"`
	Rows     []olapRowJSON `json:"rows"`
	Table    string        `json:"table"`
}

type olapRowJSON struct {
	Groups []string `json:"groups"`
	Value  float64  `json:"value"`
	Count  int      `json:"count"`
}

func toOLAPJSON(a *nl2olap.Answer) *olapJSON {
	out := &olapJSON{
		Question: a.Question,
		Category: string(qa.CatAnalytic),
		Plan:     a.PlanString(),
		Rows:     make([]olapRowJSON, len(a.Result.Rows)),
		Table:    a.Result.Format(),
	}
	for i, r := range a.Result.Rows {
		out.Rows[i] = olapRowJSON{Groups: r.Groups, Value: r.Value, Count: r.Count}
	}
	return out
}

type harvestItemJSON struct {
	Question string `json:"question"`
	Answers  int    `json:"answers"`
	Loaded   int    `json:"loaded"`
	Skipped  int    `json:"skipped"`
	Error    string `json:"error,omitempty"`
}

type harvestResponse struct {
	Normalized int               `json:"normalized"`
	Loaded     int               `json:"loaded"`
	Skipped    int               `json:"skipped"`
	Rejected   int               `json:"rejected"`
	Generation uint64            `json:"generation"`
	Error      string            `json:"error,omitempty"` // batch-level (e.g. deadline)
	Results    []harvestItemJSON `json:"results"`
}

// harvestJSON renders a harvest batch; total may be nil (nothing was
// committed).
func harvestJSON(e *Engine, items []HarvestResult, total *etl.Report) harvestResponse {
	out := harvestResponse{
		Generation: e.Generation(),
		Results:    make([]harvestItemJSON, len(items)),
	}
	if total != nil {
		out.Normalized = total.Normalized
		out.Loaded = total.Loaded
		out.Skipped = total.Skipped
		out.Rejected = len(total.Rejections)
	}
	for i, it := range items {
		out.Results[i] = harvestItemJSON{
			Question: it.Question,
			Answers:  len(it.Answers),
			Loaded:   it.Loaded,
			Skipped:  it.Skipped,
		}
		if it.Err != nil {
			out.Results[i].Error = it.Err.Error()
		}
	}
	return out
}

func askJSON(r AskResult) askResponse {
	out := askResponse{Question: r.Question, Cached: r.Cached}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	if r.OLAP != nil {
		out.OLAP = toOLAPJSON(r.OLAP)
		return out
	}
	out.Candidates = len(r.Result.Candidates)
	out.Passages = len(r.Result.Passages)
	if r.Result.Best != nil {
		out.Answer = toAnswerJSON(*r.Result.Best)
	}
	return out
}

func toAnswerJSON(a qa.Answer) *answerJSON {
	return &answerJSON{
		Text:     a.Text,
		Rendered: a.Render(),
		Value:    a.Value,
		HasValue: a.HasValue,
		Unit:     a.Unit,
		Date:     dateJSON(a.Date),
		Location: a.Location,
		URL:      a.URL,
		Score:    a.Score,
	}
}

// dateJSON renders a (possibly partial) date as ISO-style "2004-01-31",
// "2004-01" or "2004"; "" when nothing was recognised.
func dateJSON(d sbparser.DateRef) string {
	switch {
	case d.Year != 0 && d.Month != 0 && d.Day != 0:
		return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
	case d.Year != 0 && d.Month != 0:
		return fmt.Sprintf("%04d-%02d", d.Year, d.Month)
	case d.Year != 0:
		return fmt.Sprintf("%04d", d.Year)
	default:
		return ""
	}
}

func decodeJSON(e *Engine, w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(e, w, decodeStatus(err), "bad request body: "+err.Error())
		return false
	}
	return true
}

// decodeJSONOptional is decodeJSON, but an entirely empty body is accepted
// and leaves dst at its zero value.
func decodeJSONOptional(e *Engine, w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil && err != io.EOF {
		httpError(e, w, decodeStatus(err), "bad request body: "+err.Error())
		return false
	}
	return true
}

// decodeStatus distinguishes an oversized body (413 — the client must
// shrink the request, retrying as-is cannot succeed) from malformed
// JSON (400).
func decodeStatus(err error) int {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(nil, w, http.StatusOK, v)
}

// setRetryAfter stamps the load-derived backoff hint on a 429. e may be
// nil only on paths that cannot produce a 429 (writeJSON).
func setRetryAfter(e *Engine, w http.ResponseWriter) {
	secs := 1
	if e != nil {
		secs = e.RetryAfterSeconds()
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func writeJSONStatus(e *Engine, w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		setRetryAfter(e, w)
	}
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(e *Engine, w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		setRetryAfter(e, w)
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
