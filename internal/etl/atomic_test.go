package etl

import (
	"path/filepath"
	"testing"

	"dwqa/internal/dw"
	"dwqa/internal/qa"
	"dwqa/internal/store"
)

// These tests pin the two PR-7 loader bugfixes: the two-phase-commit
// hole (members durably committed while the fact append failed, dedup
// keys abandoned) and the dedup-key case mismatch (the key lowercased
// the city while the member kept the raw form).

func TestCanonicalCity(t *testing.T) {
	cases := []struct{ in, want string }{
		{"barcelona", "Barcelona"},
		{"Barcelona", "Barcelona"},
		{"new york", "New York"},
		{"  new   york  ", "New York"},
		{"el prat", "El Prat"},
		// Shouted words fold down to the member form the feed path
		// mints — "BARCELONA" harvested from a headline and "barcelona"
		// from running text are the same City member (and the NL→OLAP
		// grounding resolves both to the same filter value).
		{"BARCELONA", "Barcelona"},
		{"NEW YORK", "New York"},
		// Mixed-case words are not shouting: interior capitals survive.
		{"McMurdo", "McMurdo"},
		{"O'Hare", "O'Hare"},
		// A single letter is not shouting either ("A Coruña").
		{"A coruña", "A Coruña"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := CanonicalCity(c.in); got != c.want {
			t.Errorf("CanonicalCity(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestLoadDedupCanonicalCityCase pins the case-mismatch fix: answers
// naming the same city in different letter cases deduplicate against
// each other AND create exactly one dimension member, whose name equals
// the canonical form the dedup key used. Before the fix the key
// lowercased the city while the member kept the raw per-answer form, so
// the member table's casing depended on answer order and never matched
// the key.
func TestLoadDedupCanonicalCityCase(t *testing.T) {
	l, wh := newLoader(t)
	rep, err := l.Load([]qa.Answer{
		answer(8, "C", "barcelona", 2004, 1, 31),
		answer(8, "C", "Barcelona", 2004, 1, 31),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Skipped != 1 {
		t.Fatalf("loaded %d, skipped %d; want 1 and 1", rep.Loaded, rep.Skipped)
	}
	if members := wh.Members("City", "City"); len(members) != 1 || members[0] != "Barcelona" {
		t.Fatalf("City members = %v, want exactly [Barcelona]", members)
	}
	if n := wh.FactCount("Weather"); n != 1 {
		t.Fatalf("fact rows = %d, want 1", n)
	}
	// The canonical key also holds across calls (the Loader-lifetime
	// dedup map).
	rep, err = l.Load([]qa.Answer{answer(8, "C", "barcelona", 2004, 1, 31)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 0 || rep.Skipped != 1 {
		t.Fatalf("cross-call: loaded %d, skipped %d; want 0 and 1", rep.Loaded, rep.Skipped)
	}
}

// TestRestoreDedupMatchesCanonicalMembers pins the restore half of the
// fix: dedup keys rebuilt from warehouse provenance must equal the keys
// live loads write, or a recovered boot would re-load every record. The
// member names in the warehouse are canonical by construction, so
// RestoreDedup must NOT case-fold them.
func TestRestoreDedupMatchesCanonicalMembers(t *testing.T) {
	l, wh := newLoader(t)
	if _, err := l.Load([]qa.Answer{
		answer(8, "C", "barcelona", 2004, 1, 31),
		answer(5, "C", "new york", 2004, 1, 30),
	}); err != nil {
		t.Fatal(err)
	}
	// A second loader over the same warehouse (the recovery path).
	l2, err := NewLoader(nil, wh, "Weather", "City", "Date")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.RestoreDedup(); err != nil {
		t.Fatal(err)
	}
	rep, err := l2.Load([]qa.Answer{
		answer(8, "C", "Barcelona", 2004, 1, 31),
		answer(5, "C", "New York", 2004, 1, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 0 || rep.Skipped != 2 {
		t.Fatalf("restored loader: loaded %d, skipped %d; want 0 and 2", rep.Loaded, rep.Skipped)
	}
}

// TestLoadAllAtomicOnJournalFailure pins the partial-commit fix with a
// real store on a fault-injected filesystem: when the WAL refuses the
// feed, NOTHING lands — no members, no rows, no dedup marks — and the
// identical retry after the disk recovers loads everything. Before the
// fix, AddMembers committed durably before AddFactRows failed, leaving
// members without rows and dedup keys abandoned in limbo.
func TestLoadAllAtomicOnJournalFailure(t *testing.T) {
	ffs := store.NewFaultFS(store.OS())
	st, err := store.OpenFS(filepath.Join(t.TempDir(), "data"), ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wh, err := dw.New(weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	wh.SetJournal(st)
	l, err := NewLoader(axiomOntology(t), wh, "Weather", "City", "Date")
	if err != nil {
		t.Fatal(err)
	}

	batch := [][]qa.Answer{
		{answer(8, "C", "Barcelona", 2004, 1, 31), answer(5, "C", "Madrid", 2004, 1, 30)},
		{answer(2, "C", "New York", 2004, 2, 1)},
	}
	membersBefore, rowsBefore := wh.Counts()

	// The feed's single WAL append fails at fsync.
	ffs.Arm(store.Fault{Op: store.OpSync, Nth: 1})
	if _, _, _, err := l.LoadAll(batch); err == nil {
		t.Fatal("feed must fail when the WAL refuses the commit")
	}
	if ffs.Fired() == 0 {
		t.Fatal("fault never fired; the test exercised nothing")
	}
	ffs.Disarm()

	// Atomicity: the failed feed left no trace.
	if m, r := wh.Counts(); m != membersBefore || r != rowsBefore {
		t.Fatalf("failed feed left state: members %d→%d, rows %d→%d", membersBefore, m, rowsBefore, r)
	}
	if got := wh.Members("City", "City"); len(got) != 0 {
		t.Fatalf("failed feed committed members: %v", got)
	}

	// The identical retry loads everything — the dedup keys were not
	// burned by the failed attempt.
	reports, total, touched, err := l.LoadAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if total.Loaded != 3 || total.Skipped != 0 {
		t.Fatalf("retry loaded %d / skipped %d, want 3 / 0", total.Loaded, total.Skipped)
	}
	if reports[0].Loaded != 2 || reports[1].Loaded != 1 {
		t.Fatalf("per-batch loads = %d, %d; want 2, 1", reports[0].Loaded, reports[1].Loaded)
	}
	if wh.FactCount("Weather") != 3 {
		t.Fatalf("fact rows = %d, want 3", wh.FactCount("Weather"))
	}
	if touched.Empty() {
		t.Fatal("successful feed must report its write footprint")
	}
}

// TestLoadAllTouchedFootprint pins the Touched contract the serving
// cache's selective invalidation depends on: every committed member
// (with ancestors), the fed fact, and — crucially — an EMPTY footprint
// when the whole feed deduplicates away.
func TestLoadAllTouchedFootprint(t *testing.T) {
	l, wh := newLoader(t)
	// Pre-build a City hierarchy so the ancestor walk has somewhere to
	// go: Barcelona rolls up to Spain.
	if _, err := wh.AddMember("City", "Country", "Spain", nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.AddMember("City", "City", "Barcelona", nil, "Spain"); err != nil {
		t.Fatal(err)
	}

	_, _, touched, err := l.LoadAll([][]qa.Answer{{answer(8, "C", "Barcelona", 2004, 1, 31)}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[TouchedMember]bool{
		{Dim: "Date", Level: "Year", Name: "2004"}:      true,
		{Dim: "Date", Level: "Month", Name: "2004-01"}:  true,
		{Dim: "Date", Level: "Day", Name: "2004-01-31"}: true,
		{Dim: "City", Level: "City", Name: "Barcelona"}: true,
		{Dim: "City", Level: "Country", Name: "Spain"}:  true, // ancestor closure
	}
	got := map[TouchedMember]bool{}
	for _, m := range touched.Members {
		got[m] = true
	}
	for m := range want {
		if !got[m] {
			t.Errorf("touched members missing %+v (got %+v)", m, touched.Members)
		}
	}
	if len(touched.Facts) != 1 || touched.Facts[0] != "Weather" {
		t.Errorf("touched facts = %v, want [Weather]", touched.Facts)
	}

	// The identical feed again: everything dedups, nothing was touched.
	_, _, touched, err = l.LoadAll([][]qa.Answer{{answer(8, "C", "Barcelona", 2004, 1, 31)}})
	if err != nil {
		t.Fatal(err)
	}
	if !touched.Empty() {
		t.Errorf("all-duplicate feed reported a footprint: %+v / %v", touched.Members, touched.Facts)
	}

	// An all-rejected feed likewise.
	_, _, touched, err = l.LoadAll([][]qa.Answer{{{HasValue: false}}})
	if err != nil {
		t.Fatal(err)
	}
	if !touched.Empty() {
		t.Errorf("all-rejected feed reported a footprint: %+v / %v", touched.Members, touched.Facts)
	}
}
