package webcorpus

import "strings"

// This file implements the HTML→text extraction the QA system applies to
// web pages before NLP analysis. Two variants exist:
//
//   - ExtractText: the baseline extractor used by the paper's evaluation.
//     Tags are stripped and block boundaries become newlines; table cells
//     are joined with spaces, which is precisely what destroys the
//     measure↔unit association in Figure 5 pages.
//   - ExtractTextTableAware: the paper's proposed future-work extension
//     ("we will study the pre-processing of web pages in order to handle
//     tables correctly"): tables are linearised row by row, prefixing each
//     cell with its column header, so units declared in headers re-attach
//     to the values.

// blockTags are HTML elements whose close (or open, for br/tr) forces a
// sentence boundary in the extracted text.
var blockTags = map[string]bool{
	"p": true, "br": true, "div": true, "h1": true, "h2": true, "h3": true,
	"h4": true, "li": true, "tr": true, "table": true, "title": true,
}

// ExtractText strips tags from HTML, inserting newlines at block
// boundaries and spaces at cell boundaries. It never fails: malformed
// HTML degrades to best-effort text.
func ExtractText(html string) string {
	var b strings.Builder
	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			// Unclosed tag: drop the rest (best effort).
			break
		}
		tag := strings.ToLower(strings.TrimSpace(strings.Trim(html[i+1:i+end], "/")))
		if sp := strings.IndexAny(tag, " \t\n"); sp >= 0 {
			tag = tag[:sp]
		}
		if blockTags[tag] {
			b.WriteByte('\n')
		} else {
			// Inline boundary: keep words apart ("<td>8</td><td>3</td>").
			b.WriteByte(' ')
		}
		i += end + 1
	}
	return collapseSpace(b.String())
}

// tableRegion locates the next <table>...</table> region at or after
// position i, returning start, end (after close tag) and ok.
func tableRegion(html string, i int) (int, int, bool) {
	lower := strings.ToLower(html)
	start := strings.Index(lower[i:], "<table")
	if start < 0 {
		return 0, 0, false
	}
	start += i
	close := strings.Index(lower[start:], "</table>")
	if close < 0 {
		return 0, 0, false
	}
	return start, start + close + len("</table>"), true
}

// ExtractTextTableAware is ExtractText with table pre-processing: every
// data row is rewritten as "Header1 cell1. Header2 cell2. ..." so the
// units named in the header row attach to each value.
func ExtractTextTableAware(html string) string {
	var b strings.Builder
	i := 0
	for {
		start, end, ok := tableRegion(html, i)
		if !ok {
			b.WriteString(ExtractText(html[i:]))
			break
		}
		b.WriteString(ExtractText(html[i:start]))
		b.WriteByte('\n')
		b.WriteString(linearizeTable(html[start:end]))
		b.WriteByte('\n')
		i = end
	}
	return collapseSpace(b.String())
}

// linearizeTable rewrites one <table> region row by row with header
// prefixes.
func linearizeTable(tableHTML string) string {
	rows := sliceBetween(tableHTML, "<tr", "</tr>")
	if len(rows) == 0 {
		return ExtractText(tableHTML)
	}
	headers := cellTexts(rows[0], true)
	var b strings.Builder
	dataRows := rows
	if len(headers) > 0 {
		dataRows = rows[1:]
	}
	for _, row := range dataRows {
		cells := cellTexts(row, false)
		if len(cells) == 0 {
			continue
		}
		for j, cell := range cells {
			if cell == "" {
				continue
			}
			if j < len(headers) && headers[j] != "" {
				// "High (ºC) 8." — the unit from the header lands next to
				// the value, which is what re-enables extraction.
				b.WriteString(headers[j])
				b.WriteByte(' ')
			}
			b.WriteString(cell)
			b.WriteString(". ")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sliceBetween returns the inner content of each non-overlapping
// openPrefix...closeTag region (case-insensitive, attribute-tolerant).
func sliceBetween(html, openPrefix, closeTag string) []string {
	var out []string
	lower := strings.ToLower(html)
	i := 0
	for {
		start := strings.Index(lower[i:], openPrefix)
		if start < 0 {
			return out
		}
		start += i
		// Skip past the opening tag's '>'.
		gt := strings.IndexByte(lower[start:], '>')
		if gt < 0 {
			return out
		}
		contentStart := start + gt + 1
		end := strings.Index(lower[contentStart:], closeTag)
		if end < 0 {
			return out
		}
		out = append(out, html[contentStart:contentStart+end])
		i = contentStart + end + len(closeTag)
	}
}

// cellTexts extracts the text of each <td> (or <th> when header) cell.
func cellTexts(rowHTML string, header bool) []string {
	open, close := "<td", "</td>"
	if header {
		open, close = "<th", "</th>"
	}
	var out []string
	for _, c := range sliceBetween(rowHTML, open, close) {
		out = append(out, strings.TrimSpace(ExtractText(c)))
	}
	return out
}

// collapseSpace normalises runs of spaces/tabs and trims each line.
func collapseSpace(s string) string {
	lines := strings.Split(s, "\n")
	var out []string
	for _, line := range lines {
		line = strings.Join(strings.Fields(line), " ")
		if line != "" {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
