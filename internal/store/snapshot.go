package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dwqa/internal/dw"
	"dwqa/internal/ir"
	"dwqa/internal/nlp"
	"dwqa/internal/ontology"
)

// Snapshot file layout (self-describing, versioned, checksummed):
//
//	magic    "DWQASNAP"            8 bytes
//	version  uvarint               currently 1; readers reject newer
//	walSeq   uvarint               last WAL record the snapshot covers
//	dw       section               warehouse members + fact columns
//	ir       section               docs, sentences, passages, dictionary,
//	                               postings
//	onto     section               merged ontology incl. axioms
//	crc32c   4 bytes LE            Castagnoli checksum of all prior bytes
//
// Files are written to a temp name and renamed into place, so a crash
// mid-write never leaves a live snapshot truncated — and if it somehow
// did, the checksum catches it and recovery falls back to the previous
// snapshot.

const (
	snapshotMagic = "DWQASNAP"
	// SchemaVersion is the snapshot format version this build writes and
	// the newest it can read. v2 added the per-document global ordinal
	// (ir.Document.Ord) that sharded deployments merge-sort on; v1
	// snapshots still load, with every ordinal zero.
	SchemaVersion = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// State is the full persistent state of the engine stack: the warehouse
// contents, the passage index and the merged ontology, stamped with the
// WAL sequence they cover. Recovery = load State + replay WAL records
// with seq > WALSeq. Fingerprint is an opaque caller-owned string (the
// pipeline stores its scenario parameters there) checked at recovery so
// state from one configuration is never silently grafted onto another.
type State struct {
	WALSeq      uint64
	Fingerprint string
	DW          *dw.Snapshot
	IR          *ir.Snapshot
	Onto        *ontology.Snapshot
}

// EncodeState renders a State into the snapshot file format.
func EncodeState(st *State) []byte {
	w := &writer{buf: make([]byte, 0, 1<<20)}
	w.buf = append(w.buf, snapshotMagic...)
	w.uvarint(SchemaVersion)
	w.uvarint(st.WALSeq)
	w.str(st.Fingerprint)
	encodeDW(w, st.DW)
	encodeIR(w, st.IR)
	encodeOnto(w, st.Onto)
	w.buf = appendCRC(w.buf)
	return w.buf
}

func appendCRC(buf []byte) []byte {
	sum := crc32.Checksum(buf, crcTable)
	return append(buf, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// DecodeState parses and validates a snapshot file image: magic, version
// gate, checksum, then the three sections. Every failure is loud and
// names what broke.
func DecodeState(buf []byte) (*State, error) {
	if len(buf) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(buf))
	}
	if string(buf[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: bad snapshot magic %q", buf[:len(snapshotMagic)])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := &reader{buf: body, off: len(snapshotMagic)}
	version := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if version > SchemaVersion {
		return nil, fmt.Errorf("store: snapshot schema v%d is newer than supported v%d (upgrade dwqa to read it)",
			version, SchemaVersion)
	}
	if version == 0 {
		return nil, fmt.Errorf("store: snapshot schema v0 is invalid")
	}
	st := &State{WALSeq: r.uvarint(), Fingerprint: r.str()}
	st.DW = decodeDW(r)
	st.IR = decodeIR(r, version)
	st.Onto = decodeOnto(r)
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot body", r.remaining())
	}
	return st, nil
}

// writeSnapshotFile writes an encoded snapshot atomically: temp file in
// the same directory, fsync, rename, directory fsync.
func writeSnapshotFile(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	_ = fsys.SyncDir(dir) // best-effort directory durability
	return nil
}

// --- warehouse section ---

func encodeDW(w *writer, snap *dw.Snapshot) {
	w.uvarint(uint64(len(snap.Dims)))
	for _, ds := range snap.Dims {
		w.str(ds.Dim)
		w.uvarint(uint64(len(ds.Levels)))
		for _, ls := range ds.Levels {
			w.str(ls.Level)
			w.uvarint(uint64(len(ls.Members)))
			for _, m := range ls.Members {
				w.str(m.Name)
				w.varint(int64(m.Parent))
				encodeStringMap(w, m.Attrs)
			}
		}
	}
	w.uvarint(uint64(len(snap.Facts)))
	for _, fs := range snap.Facts {
		w.str(fs.Fact)
		w.uvarint(uint64(fs.Rows))
		w.uvarint(uint64(len(fs.Coords)))
		for _, col := range fs.Coords {
			w.i32s(col)
		}
		w.uvarint(uint64(len(fs.Measures)))
		for _, col := range fs.Measures {
			w.f64s(col)
		}
		w.i32s(fs.ProvRows)
		w.strs(fs.ProvVals)
	}
}

func decodeDW(r *reader) *dw.Snapshot {
	snap := &dw.Snapshot{}
	nDims := r.count(2)
	for d := 0; d < nDims && r.err == nil; d++ {
		ds := dw.DimensionSnapshot{Dim: r.str()}
		nLevels := r.count(2)
		for l := 0; l < nLevels && r.err == nil; l++ {
			ls := dw.LevelSnapshot{Level: r.str()}
			nMembers := r.count(2)
			if r.err == nil && nMembers > 0 {
				ls.Members = make([]dw.Member, nMembers)
				for i := range ls.Members {
					ls.Members[i] = dw.Member{
						Key:    i,
						Name:   r.str(),
						Parent: int(r.varint()),
						Attrs:  decodeStringMap(r),
					}
				}
			}
			ds.Levels = append(ds.Levels, ls)
		}
		snap.Dims = append(snap.Dims, ds)
	}
	nFacts := r.count(2)
	for f := 0; f < nFacts && r.err == nil; f++ {
		fs := dw.FactSnapshot{Fact: r.str(), Rows: int(r.uvarint())}
		nCoords := r.count(1)
		fs.Coords = make([][]int32, 0, nCoords)
		for c := 0; c < nCoords && r.err == nil; c++ {
			fs.Coords = append(fs.Coords, r.i32s())
		}
		nMeasures := r.count(1)
		fs.Measures = make([][]float64, 0, nMeasures)
		for c := 0; c < nMeasures && r.err == nil; c++ {
			fs.Measures = append(fs.Measures, r.f64s())
		}
		fs.ProvRows = r.i32s()
		fs.ProvVals = r.strs()
		snap.Facts = append(snap.Facts, fs)
	}
	return snap
}

func encodeStringMap(w *writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

func decodeStringMap(r *reader) map[string]string {
	n := r.count(2)
	if r.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m[k] = r.str()
	}
	return m
}

// --- IR section ---
//
// The expensive parts of indexing a document — tokenisation, tagging,
// lemmatisation, window construction, posting accumulation — are all
// stored, so restore is a bulk load. Token text is NOT stored: a token's
// surface form is exactly doc.Text[start:end), so the decoder slices it
// back out of the document (zero copies beyond the document text itself).
// Tags and lemmas are interned into per-snapshot tables and referenced by
// index. Each document's token stream is framed with its byte length, so
// the decoder fans the streams out across cores — restore wall-clock is
// the bottleneck crash recovery exists to shrink.

func encodeIR(w *writer, snap *ir.Snapshot) {
	w.uvarint(uint64(snap.PassageSize))
	w.uvarint(uint64(snap.Stride))

	// Intern tables for tags and lemmas.
	tagIdx := map[nlp.Tag]uint64{}
	var tags []string
	lemmaIdx := map[string]uint64{}
	var lemmas []string
	for _, sents := range snap.DocSents {
		for _, s := range sents {
			for _, t := range s.Tokens {
				if _, ok := tagIdx[t.Tag]; !ok {
					tagIdx[t.Tag] = uint64(len(tags))
					tags = append(tags, string(t.Tag))
				}
				if _, ok := lemmaIdx[t.Lemma]; !ok {
					lemmaIdx[t.Lemma] = uint64(len(lemmas))
					lemmas = append(lemmas, t.Lemma)
				}
			}
		}
	}
	w.strs(tags)
	w.strs(lemmas)

	w.uvarint(uint64(len(snap.Docs)))
	var block writer // reused per-document token-stream buffer
	for i, doc := range snap.Docs {
		w.str(doc.URL)
		w.str(doc.Text)
		w.varint(doc.Ord)
		sents := snap.DocSents[i]
		block.buf = block.buf[:0]
		tokens := 0
		prev := int64(0)
		for _, s := range sents {
			block.uvarint(uint64(len(s.Tokens)))
			tokens += len(s.Tokens)
			for _, t := range s.Tokens {
				block.varint(int64(t.Start) - prev)
				block.uvarint(uint64(t.End - t.Start))
				block.uvarint(tagIdx[t.Tag])
				block.uvarint(lemmaIdx[t.Lemma])
				prev = int64(t.End)
			}
		}
		w.uvarint(uint64(len(sents)))
		w.uvarint(uint64(tokens))
		w.uvarint(uint64(len(block.buf)))
		w.buf = append(w.buf, block.buf...)
	}

	w.uvarint(uint64(len(snap.Passages)))
	for _, p := range snap.Passages {
		w.uvarint(uint64(p.Doc))
		w.uvarint(uint64(p.SentStart))
		w.uvarint(uint64(p.SentEnd - p.SentStart))
	}

	w.strs(snap.Terms)
	encodePostings(w, snap.Postings)
	encodePostings(w, snap.DocPostings)
}

// Posting lists are stored as fixed-width little-endian (id, tf) pairs
// rather than varints: at the 100k-passage scale the lists hold millions
// of entries, and a restore must load them at memory speed — the ~2×
// size cost on this section buys a branch-free decode loop.
func encodePostings(w *writer, lists [][]ir.Posting) {
	w.uvarint(uint64(len(lists)))
	for _, posts := range lists {
		w.uvarint(uint64(len(posts)))
		for _, p := range posts {
			w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(p.ID))
			w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(p.TF))
		}
	}
}

// docBlock is one document's framed token stream, handed to the parallel
// decode phase.
type docBlock struct {
	nSents int
	tokens int
	data   []byte
}

func decodeIR(r *reader, version uint64) *ir.Snapshot {
	snap := &ir.Snapshot{
		PassageSize: int(r.uvarint()),
		Stride:      int(r.uvarint()),
	}
	tags := r.strs()
	lemmas := r.strs()

	// Phase 1 (sequential): document headers; token blocks are sliced,
	// not decoded.
	nDocs := r.count(2)
	blocks := make([]docBlock, 0, nDocs)
	for d := 0; d < nDocs && r.err == nil; d++ {
		doc := ir.Document{URL: r.str(), Text: r.str()}
		if version >= 2 {
			doc.Ord = r.varint()
		}
		snap.Docs = append(snap.Docs, doc)
		b := docBlock{nSents: r.count(1), tokens: r.count(3)}
		blockLen := r.count(1)
		if r.err != nil {
			break
		}
		if r.off+blockLen > len(r.buf) {
			r.fail("store: truncated token block for document %q", doc.URL)
			break
		}
		b.data = r.buf[r.off : r.off+blockLen]
		r.off += blockLen
		blocks = append(blocks, b)
	}

	// Phase 2 (parallel): decode the independent token streams across
	// cores — they are the bulk of the snapshot, and this fan-out is what
	// keeps 100k-scale restore an order of magnitude under a re-feed.
	if r.err == nil {
		snap.DocSents = make([][]nlp.Sentence, len(blocks))
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		next := atomic.Int64{}
		workers := min(runtime.GOMAXPROCS(0), len(blocks))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					d := int(next.Add(1)) - 1
					if d >= len(blocks) {
						return
					}
					sents, err := decodeDocSents(blocks[d], snap.Docs[d], tags, lemmas)
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					snap.DocSents[d] = sents
				}
			}()
		}
		wg.Wait()
		if ep := firstErr.Load(); ep != nil {
			r.fail("%s", (*ep).Error())
		}
	}

	nPassages := r.count(3)
	if r.err == nil && nPassages > 0 {
		snap.Passages = make([]ir.PassageRef, nPassages)
		for i := range snap.Passages {
			doc := r.uvarint()
			start := r.uvarint()
			span := r.uvarint()
			snap.Passages[i] = ir.PassageRef{
				Doc: int32(doc), SentStart: int32(start), SentEnd: int32(start + span),
			}
		}
	}

	snap.Terms = r.strs()
	snap.Postings = decodePostings(r)
	snap.DocPostings = decodePostings(r)
	return snap
}

// uvFast decodes an unsigned varint with a fast path for the one-byte
// values that dominate token streams. Returns newPos -1 on truncation.
func uvFast(data []byte, pos int) (uint64, int) {
	if pos < len(data) {
		if b := data[pos]; b < 0x80 {
			return uint64(b), pos + 1
		}
	}
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, -1
	}
	return v, pos + n
}

// vFast is uvFast for zigzag-signed varints.
func vFast(data []byte, pos int) (int64, int) {
	u, next := uvFast(data, pos)
	if next < 0 {
		return 0, -1
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, next
}

// decodeDocSents decodes one document's token stream. Tokens land in a
// single per-document arena (one allocation), with sentences as
// subslices; token text is sliced straight out of the document. This is
// the hottest loop of a restore (millions of tokens at the 100k-passage
// scale), hence the hand-rolled varint reads over the raw block.
func decodeDocSents(b docBlock, doc ir.Document, tags, lemmas []string) ([]nlp.Sentence, error) {
	data := b.data
	pos := 0
	arena := make([]nlp.Token, b.tokens)
	ti := 0
	bounds := make([]int32, b.nSents+1)
	prev := 0
	textLen := len(doc.Text)
	truncated := func() error {
		return fmt.Errorf("store: truncated token block in document %q", doc.URL)
	}
	for s := 0; s < b.nSents; s++ {
		nToks, next := uvFast(data, pos)
		if next < 0 {
			return nil, truncated()
		}
		pos = next
		if nToks == 0 {
			return nil, fmt.Errorf("store: empty sentence in document %q", doc.URL)
		}
		bounds[s] = int32(ti)
		for t := uint64(0); t < nToks; t++ {
			if ti >= len(arena) {
				return nil, fmt.Errorf("store: document %q holds more tokens than the declared %d", doc.URL, b.tokens)
			}
			delta, next := vFast(data, pos)
			if next < 0 {
				return nil, truncated()
			}
			length, next2 := uvFast(data, next)
			if next2 < 0 {
				return nil, truncated()
			}
			tagIdx, next3 := uvFast(data, next2)
			if next3 < 0 {
				return nil, truncated()
			}
			lemmaIdx, next4 := uvFast(data, next3)
			if next4 < 0 {
				return nil, truncated()
			}
			pos = next4
			start := prev + int(delta)
			end := start + int(length)
			if start < 0 || end < start || end > textLen {
				return nil, fmt.Errorf("store: token span [%d:%d) outside document %q (%d bytes)", start, end, doc.URL, textLen)
			}
			if tagIdx >= uint64(len(tags)) {
				return nil, fmt.Errorf("store: tag index %d out of range (%d entries)", tagIdx, len(tags))
			}
			if lemmaIdx >= uint64(len(lemmas)) {
				return nil, fmt.Errorf("store: lemma index %d out of range (%d entries)", lemmaIdx, len(lemmas))
			}
			arena[ti] = nlp.Token{
				Text:  doc.Text[start:end],
				Lemma: lemmas[lemmaIdx],
				Tag:   nlp.Tag(tags[tagIdx]),
				Start: start,
				End:   end,
			}
			ti++
			prev = end
		}
	}
	if ti != b.tokens {
		return nil, fmt.Errorf("store: document %q declared %d tokens, stream holds %d", doc.URL, b.tokens, ti)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("store: %d trailing bytes in token block of document %q", len(data)-pos, doc.URL)
	}
	bounds[b.nSents] = int32(ti)
	sents := make([]nlp.Sentence, b.nSents)
	for s := 0; s < b.nSents; s++ {
		toks := arena[bounds[s]:bounds[s+1]:bounds[s+1]]
		sents[s] = nlp.Sentence{Tokens: toks, Start: toks[0].Start, End: toks[len(toks)-1].End}
	}
	return sents, nil
}

func decodePostings(r *reader) [][]ir.Posting {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	lists := make([][]ir.Posting, n)
	for i := 0; i < n && r.err == nil; i++ {
		m := r.count(8)
		if r.err != nil || m == 0 {
			continue
		}
		if r.off+8*m > len(r.buf) {
			r.fail("store: truncated posting list at offset %d", r.off)
			return lists
		}
		posts := make([]ir.Posting, m)
		buf := r.buf[r.off:]
		for j := range posts {
			posts[j] = ir.Posting{
				ID: int32(binary.LittleEndian.Uint32(buf[8*j:])),
				TF: int32(binary.LittleEndian.Uint32(buf[8*j+4:])),
			}
		}
		r.off += 8 * m
		lists[i] = posts
	}
	return lists
}

// --- ontology section ---

func encodeOnto(w *writer, snap *ontology.Snapshot) {
	w.str(snap.Name)
	w.uvarint(uint64(len(snap.Concepts)))
	for _, c := range snap.Concepts {
		w.str(c.Name)
		w.strs(c.Parents)
		w.uvarint(uint64(len(c.Attributes)))
		for _, a := range c.Attributes {
			w.str(a.Name)
			w.str(string(a.Kind))
			w.str(a.Type)
		}
		w.uvarint(uint64(len(c.Relations)))
		for _, rel := range c.Relations {
			w.str(rel.Name)
			w.str(rel.Target)
		}
		w.uvarint(uint64(len(c.Instances)))
		for _, inst := range c.Instances {
			w.str(inst.Name)
			w.strs(inst.Aliases)
			w.strs(inst.PropKeys)
			w.strs(inst.PropVals)
		}
		w.uvarint(uint64(len(c.Axioms)))
		for _, a := range c.Axioms {
			encodeAxiom(w, a)
		}
	}
}

func encodeAxiom(w *writer, a ontology.Axiom) {
	w.str(a.Concept)
	w.str(string(a.Kind))
	w.strs(a.Units)
	w.str(a.Unit)
	w.f64(a.Min)
	w.f64(a.Max)
	w.str(a.FromUnit)
	w.str(a.ToUnit)
	w.f64(a.Scale)
	w.f64(a.Offset)
}

func decodeOnto(r *reader) *ontology.Snapshot {
	snap := &ontology.Snapshot{Name: r.str()}
	nConcepts := r.count(2)
	for i := 0; i < nConcepts && r.err == nil; i++ {
		c := ontology.ConceptSnapshot{Name: r.str(), Parents: r.strs()}
		nAttrs := r.count(3)
		for a := 0; a < nAttrs && r.err == nil; a++ {
			c.Attributes = append(c.Attributes, ontology.Attribute{
				Name: r.str(), Kind: ontology.AttrKind(r.str()), Type: r.str(),
			})
		}
		nRels := r.count(2)
		for x := 0; x < nRels && r.err == nil; x++ {
			c.Relations = append(c.Relations, ontology.Relation{Name: r.str(), Target: r.str()})
		}
		nInsts := r.count(2)
		for x := 0; x < nInsts && r.err == nil; x++ {
			c.Instances = append(c.Instances, ontology.InstanceSnapshot{
				Name: r.str(), Aliases: r.strs(), PropKeys: r.strs(), PropVals: r.strs(),
			})
		}
		nAxioms := r.count(2)
		for x := 0; x < nAxioms && r.err == nil; x++ {
			c.Axioms = append(c.Axioms, decodeAxiom(r))
		}
		snap.Concepts = append(snap.Concepts, c)
	}
	return snap
}

func decodeAxiom(r *reader) ontology.Axiom {
	return ontology.Axiom{
		Concept:  r.str(),
		Kind:     ontology.AxiomKind(r.str()),
		Units:    r.strs(),
		Unit:     r.str(),
		Min:      r.f64(),
		Max:      r.f64(),
		FromUnit: r.str(),
		ToUnit:   r.str(),
		Scale:    r.f64(),
		Offset:   r.f64(),
	}
}
