package engine_test

import (
	"context"
	"errors"
	"testing"

	"dwqa/internal/engine"
	"dwqa/internal/qa"
)

// BenchmarkAskShedding measures the rejection fast path: the single
// inflight slot is held by a blocked request, there is no wait queue, and
// every Ask must be turned away immediately with ErrShed. ns/op is the
// cost of saying no under overload — the latency floor of the HTTP 429
// path, which must stay trivially cheap so an overloaded engine spends
// its cycles on admitted work, not on rejections.
func BenchmarkAskShedding(b *testing.B) {
	p := newPipeline(b)
	eng, err := engine.New(engine.Config{
		MaxInflight: 1, MaxQueue: -1, AskTimeout: -1, CacheSize: -1,
	}, p.QA, nil, nil, p.Index)
	if err != nil {
		b.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.SetAnswerFnForTest(blockingAnswer(started, release))
	done := make(chan struct{})
	go func() {
		eng.Ask(context.Background(), "occupier")
		close(done)
	}()
	<-started

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := eng.Ask(context.Background(), "overload probe"); !errors.Is(r.Err, engine.ErrShed) {
			b.Fatalf("want ErrShed while saturated, got %v", r.Err)
		}
	}
	b.StopTimer()
	close(release)
	<-done
}

// BenchmarkCacheFeedInvalidation measures what the tag-based cache
// invalidation buys a serving engine under mixed feed/ask traffic: the
// same workload (seven asks, then one single-question harvest feed,
// repeated) runs against selective invalidation and against the legacy
// flush-everything-on-feed strategy. The reported hit-rate metric is
// the headline number — a feed under full flush zeroes the cache, so
// every pool entry is recomputed afterwards, while selective eviction
// drops only the entries whose dimension members the feed actually
// touched (factoid entries survive outright). ns/op follows the hit
// rate: a hit is a map lookup, a miss replays question analysis,
// retrieval and extraction.
func BenchmarkCacheFeedInvalidation(b *testing.B) {
	for _, bm := range []struct {
		name      string
		fullFlush bool
	}{
		{"selective", false},
		{"full-flush", true},
	} {
		b.Run(bm.name, func(b *testing.B) {
			eng := newFlushConfiguredEngine(b, bm.fullFlush)
			ctx := context.Background()
			harvest := eng.DefaultHarvest()
			pool := []string{
				"What is the weather like in January of 2004 in El Prat?",
				"What is the weather like in February of 2004 in Barajas?",
				"What is the average temperature in Barcelona by month?",
				"How many tickets were sold to Barcelona in January of 2004?",
				"count of weather observations by city",
			}
			feeds := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%8 == 7 {
					batch := harvest[feeds%len(harvest) : feeds%len(harvest)+1]
					if _, _, err := eng.HarvestAll(ctx, batch); err != nil {
						b.Fatal(err)
					}
					feeds++
					continue
				}
				if r := eng.Ask(ctx, pool[i%len(pool)]); r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			b.StopTimer()
			st := eng.Stats()
			if total := st.CacheHits + st.CacheMisses; total > 0 {
				b.ReportMetric(float64(st.CacheHits)/float64(total), "hit-rate")
			}
			b.ReportMetric(float64(st.CacheEvicted), "evictions")
		})
	}
}

// BenchmarkAskAdmission isolates the per-request cost of the resilience
// plumbing — gate acquire/release, deadline context construction, expiry
// bookkeeping — by running the same trivial answer function with the
// serving limits on (defaults) and off (library mode). The delta between
// the two arms is the admission overhead PERF.md's ≤5% cold-path budget
// refers to; on the cold path that delta is buried under milliseconds of
// question analysis and retrieval.
func BenchmarkAskAdmission(b *testing.B) {
	p := newPipeline(b)
	instant := func(string) (*qa.Result, error) { return &qa.Result{}, nil }
	for _, bm := range []struct {
		name string
		cfg  engine.Config
	}{
		{"limits-on", engine.Config{CacheSize: -1}},
		{"limits-off", engine.Config{CacheSize: -1, MaxInflight: -1, AskTimeout: -1}},
	} {
		b.Run(bm.name, func(b *testing.B) {
			eng, err := engine.New(bm.cfg, p.QA, nil, nil, p.Index)
			if err != nil {
				b.Fatal(err)
			}
			eng.SetAnswerFnForTest(instant)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := eng.Ask(context.Background(), "probe"); r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		})
	}
}
