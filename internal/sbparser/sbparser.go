// Package sbparser implements the shallow parser of the AliQAn
// reproduction. It replaces SUPAR (reference [3] of the paper): the
// syntactic analysis is partial, producing the Syntactic Blocks (SBs) that
// drive question analysis, passage selection and answer extraction.
//
// Three block types exist, matching the paper's footnote 7: NP (noun
// phrase), PP (prepositional phrase, containing an NP) and VBC (verbal
// head). NPs carry the paper's feature annotations: a role (subject,
// compl) and a subtype (properNoun, comun, date, numeral, day).
package sbparser

import (
	"strconv"
	"strings"

	"dwqa/internal/nlp"
)

// BlockType is the syntactic category of a block.
type BlockType string

// Block types.
const (
	NP  BlockType = "NP"  // noun phrase
	PP  BlockType = "PP"  // prepositional phrase
	VBC BlockType = "VBC" // verbal chunk (verbal head)
)

// SubType is the paper's NP subtype annotation. "comun" (sic) follows the
// paper's own spelling in Table 1.
type SubType string

// NP subtypes.
const (
	SubNone       SubType = ""
	SubProperNoun SubType = "properNoun"
	SubCommon     SubType = "comun"
	SubDate       SubType = "date"
	SubNumeral    SubType = "numeral"
	SubDay        SubType = "day"
)

// Role is the grammatical function annotation of an NP.
type Role string

// NP roles.
const (
	RoleNone    Role = ""
	RoleSubject Role = "subject"
	RoleCompl   Role = "compl"
)

// Block is one syntactic block: a typed span of tokens. A PP embeds the
// NP (and possibly further PPs) it governs as children; its own Tokens
// hold only the preposition.
type Block struct {
	Type     BlockType
	Sub      SubType
	Role     Role
	Tokens   []nlp.Token
	Children []Block
}

// Text returns the surface text of the block including children.
func (b Block) Text() string {
	var parts []string
	for _, t := range b.Tokens {
		parts = append(parts, t.Text)
	}
	for _, c := range b.Children {
		parts = append(parts, c.Text())
	}
	return strings.Join(parts, " ")
}

// Lemmas returns all lemmas in the block and its children.
func (b Block) Lemmas() []string {
	var out []string
	for _, t := range b.Tokens {
		out = append(out, t.Lemma)
	}
	for _, c := range b.Children {
		out = append(out, c.Lemmas()...)
	}
	return out
}

// ContentLemmas returns the lemmas of content tokens, stopwords excluded.
func (b Block) ContentLemmas() []string {
	var out []string
	for _, t := range b.Tokens {
		if t.IsContentWord() && !nlp.IsStopword(t.Lemma) {
			out = append(out, t.Lemma)
		}
	}
	for _, c := range b.Children {
		out = append(out, c.ContentLemmas()...)
	}
	return out
}

// HeadNoun returns the head of an NP: the last nominal token ("as head we
// mean ... the word that determines the syntactic type of the phrase",
// footnote 2 of the paper). Empty for non-NPs without nominal tokens.
func (b Block) HeadNoun() nlp.Token {
	var head nlp.Token
	for _, t := range b.Tokens {
		if t.Tag.IsNoun() {
			head = t
		}
	}
	return head
}

// InnerNP returns the NP governed by a PP (possibly nested), or the block
// itself when it already is an NP. Returns nil when none exists.
func (b *Block) InnerNP() *Block {
	if b.Type == NP {
		return b
	}
	for i := range b.Children {
		if np := b.Children[i].InnerNP(); np != nil {
			return np
		}
	}
	return nil
}

// Parse chunks one analysed sentence into syntactic blocks.
func Parse(sent nlp.Sentence) []Block {
	toks := sent.Tokens
	var blocks []Block
	i := 0
	// Track whether a VBC has been produced yet, for role assignment.
	firstVBCAt := -1
	for j, t := range toks {
		if t.Tag.IsVerb() {
			firstVBCAt = j
			break
		}
	}
	for i < len(toks) {
		t := toks[i]
		switch {
		case t.Tag.IsVerb():
			j := i
			for j < len(toks) && (toks[j].Tag.IsVerb() || toks[j].Tag == nlp.TagRB || toks[j].Tag == nlp.TagTO) {
				j++
			}
			blocks = append(blocks, Block{Type: VBC, Tokens: toks[i:j]})
			i = j
		case t.Tag.IsPreposition() || t.Tag == nlp.TagTO:
			// PP: preposition + following NP (if any).
			pp := Block{Type: PP, Tokens: toks[i : i+1]}
			i++
			if np, next := scanNP(toks, i); np != nil {
				pp.Children = append(pp.Children, *np)
				i = next
			}
			blocks = append(blocks, pp)
		default:
			if np, next := scanNP(toks, i); np != nil {
				*np = annotateRole(*np, blocks, firstVBCAt, posOf(toks, np.Tokens[0]))
				blocks = append(blocks, *np)
				i = next
				continue
			}
			// Token outside any block (punctuation, stray adjective...).
			i++
		}
	}
	return blocks
}

func posOf(toks []nlp.Token, t nlp.Token) int {
	for i := range toks {
		if toks[i].Start == t.Start {
			return i
		}
	}
	return -1
}

// scanNP tries to read a noun phrase starting at i: optional determiner,
// adjectives, then one or more nominal tokens (nouns, proper nouns,
// numbers, the degree marker). Returns nil when no NP starts here.
func scanNP(toks []nlp.Token, i int) (*Block, int) {
	j := i
	// Optional determiner.
	if j < len(toks) && toks[j].Tag == nlp.TagDT {
		j++
	}
	// Adjectives.
	for j < len(toks) && toks[j].Tag == nlp.TagJJ {
		j++
	}
	// Nominal core.
	core := j
	for j < len(toks) && isNominal(toks[j]) {
		j++
	}
	if j == core {
		return nil, i
	}
	np := Block{Type: NP, Tokens: toks[i:j]}
	np.Sub = classifyNP(np.Tokens)
	return &np, j
}

// isNominal reports whether a token can belong to the nominal core of an
// NP. The degree marker "º" joins ("8 º C" is one NP in the paper).
func isNominal(t nlp.Token) bool {
	if t.Tag.IsNoun() || t.Tag == nlp.TagCD {
		return true
	}
	return t.Text == "º" || t.Text == "°"
}

// classifyNP derives the paper's NP subtype from the token mix.
func classifyNP(toks []nlp.Token) SubType {
	hasMonth, hasDayName, hasCD, hasNP, hasNoun := false, false, false, false, false
	for _, t := range toks {
		lower := strings.ToLower(t.Text)
		if _, ok := nlp.IsMonthName(lower); ok {
			hasMonth = true
		}
		if nlp.IsDayName(lower) {
			hasDayName = true
		}
		switch t.Tag {
		case nlp.TagCD:
			hasCD = true
		case nlp.TagNP:
			hasNP = true
		case nlp.TagNN, nlp.TagNNS:
			hasNoun = true
		}
	}
	switch {
	case hasDayName && !hasMonth:
		return SubDay
	case hasMonth && hasCD, hasDayName && hasMonth:
		return SubDate
	case hasMonth:
		return SubDate
	case hasCD && !hasNP && !hasNoun:
		return SubNumeral
	case hasNP:
		return SubProperNoun
	default:
		return SubCommon
	}
}

// annotateRole assigns subject/compl following the positional heuristics
// of the paper's traces: NPs before the first verbal chunk (or in verbless
// sentences) are subjects; the NP immediately after a VBC is a complement.
func annotateRole(np Block, prior []Block, firstVBCAt, npTokenPos int) Block {
	if firstVBCAt == -1 || npTokenPos < firstVBCAt {
		np.Role = RoleSubject
		return np
	}
	if n := len(prior); n > 0 && prior[n-1].Type == VBC {
		np.Role = RoleCompl
	}
	return np
}

// ParseText analyses raw text and parses every sentence.
func ParseText(text string) [][]Block {
	sents := nlp.SplitSentences(text)
	out := make([][]Block, len(sents))
	for i, s := range sents {
		out[i] = Parse(s)
	}
	return out
}

// Render produces the paper's trace annotation for a block list, e.g.
// "<@NP,compl,comun,,> the DT the weather NN weather <@/NP,compl,comun,,>".
func Render(blocks []Block) string {
	var b strings.Builder
	for i, blk := range blocks {
		if i > 0 {
			b.WriteByte(' ')
		}
		renderBlock(&b, blk)
	}
	return b.String()
}

func renderBlock(b *strings.Builder, blk Block) {
	switch blk.Type {
	case PP:
		b.WriteString("<@PP>")
		for _, t := range blk.Tokens {
			b.WriteByte(' ')
			b.WriteString(t.String())
		}
		for _, c := range blk.Children {
			b.WriteByte(' ')
			renderBlock(b, c)
		}
		b.WriteString(" <@/PP>")
	case VBC:
		b.WriteString("<@VBC>")
		for _, t := range blk.Tokens {
			b.WriteByte(' ')
			b.WriteString(t.String())
		}
		b.WriteString(" <@/VBC>")
	default:
		tag := "<@NP," + string(blk.Role) + "," + string(blk.Sub) + ",,>"
		b.WriteString(tag)
		for _, t := range blk.Tokens {
			b.WriteByte(' ')
			b.WriteString(t.String())
		}
		b.WriteString(" <@/NP," + string(blk.Role) + "," + string(blk.Sub) + ",,>")
	}
}

// DateRef is a (possibly partial) calendar date mentioned in text. Zero
// fields are unknown.
type DateRef struct {
	Year  int
	Month int
	Day   int
}

// IsZero reports whether nothing was recognised.
func (d DateRef) IsZero() bool { return d.Year == 0 && d.Month == 0 && d.Day == 0 }

// Covers reports whether d is compatible with other: every field known in
// d matches other (month/year queries cover specific days).
func (d DateRef) Covers(other DateRef) bool {
	if d.Year != 0 && d.Year != other.Year {
		return false
	}
	if d.Month != 0 && d.Month != other.Month {
		return false
	}
	if d.Day != 0 && d.Day != other.Day {
		return false
	}
	return true
}

// ExtractDates finds date references across a block sequence. Date parts
// split across adjacent blocks are combined — "in January of 2004" parses
// as PP(January)+PP(2004) and yields one DateRef{2004,1,0}.
func ExtractDates(blocks []Block) []DateRef {
	var refs []DateRef
	cur := DateRef{}
	flush := func() {
		if !cur.IsZero() && (cur.Year != 0 || cur.Month != 0) {
			refs = append(refs, cur)
		}
		cur = DateRef{}
	}
	var walk func(blk Block)
	walk = func(blk Block) {
		if blk.Type == NP {
			sawPart := false
			for _, t := range blk.Tokens {
				lower := strings.ToLower(t.Text)
				if m, ok := nlp.IsMonthName(lower); ok {
					if cur.Month != 0 {
						flush()
					}
					cur.Month = m
					sawPart = true
					continue
				}
				if t.Tag == nlp.TagCD {
					if n, ok := parseCD(t.Text); ok {
						switch {
						case n >= 1500 && n <= 2200:
							if cur.Year != 0 {
								flush()
							}
							cur.Year = n
							sawPart = true
						case n >= 1 && n <= 31 && cur.Day == 0:
							// The day may precede the month ("the 12th of
							// May"); keep it tentatively — flush discards
							// it unless a month or year joins.
							cur.Day = n
							sawPart = true
						}
					}
				}
			}
			_ = sawPart
			return
		}
		for _, c := range blk.Children {
			walk(c)
		}
	}
	for _, blk := range blocks {
		walk(blk)
	}
	flush()
	return refs
}

// parseCD parses a cardinal token ("31", "12th", "46.4") as an integer
// when it is a whole number.
func parseCD(text string) (int, bool) {
	text = strings.TrimSuffix(text, "st")
	text = strings.TrimSuffix(text, "nd")
	text = strings.TrimSuffix(text, "rd")
	text = strings.TrimSuffix(text, "th")
	n, err := strconv.Atoi(text)
	if err != nil {
		return 0, false
	}
	return n, true
}
