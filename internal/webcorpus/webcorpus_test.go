package webcorpus

import (
	"fmt"
	"strings"
	"testing"
)

func TestWeatherSeriesDeterministic(t *testing.T) {
	a := WeatherSeries("Barcelona", 2004, 1, 42)
	b := WeatherSeries("Barcelona", 2004, 1, 42)
	if len(a) != 31 {
		t.Fatalf("January has %d days in the series, want 31", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series not deterministic at day %d: %+v vs %+v", i+1, a[i], b[i])
		}
	}
	c := WeatherSeries("Barcelona", 2004, 1, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestWeatherSeriesSeasonality(t *testing.T) {
	jan := WeatherSeries("Barcelona", 2004, 1, 42)
	jul := WeatherSeries("Barcelona", 2004, 7, 42)
	avg := func(days []WeatherDay) float64 {
		s := 0.0
		for _, d := range days {
			s += float64(d.HighC)
		}
		return s / float64(len(days))
	}
	if avg(jul) <= avg(jan)+5 {
		t.Errorf("July (%f) should be clearly warmer than January (%f) in Barcelona", avg(jul), avg(jan))
	}
	for _, d := range jan {
		if d.LowC >= d.HighC {
			t.Errorf("day %d: low %d >= high %d", d.Day, d.LowC, d.HighC)
		}
		if d.Condition == "" {
			t.Errorf("day %d: no condition", d.Day)
		}
	}
}

func TestWeatherSeriesLeapFebruary(t *testing.T) {
	if got := len(WeatherSeries("Madrid", 2004, 2, 1)); got != 29 {
		t.Errorf("February 2004 series has %d days, want 29", got)
	}
	if got := len(WeatherSeries("Madrid", 2003, 2, 1)); got != 28 {
		t.Errorf("February 2003 series has %d days, want 28", got)
	}
}

func TestWeekdayNames(t *testing.T) {
	// January 31, 2004 was a Saturday; the paper's figure says Monday for
	// flavour, but our generator must use the real calendar.
	d := WeatherDay{City: "Barcelona", Year: 2004, Month: 1, Day: 31}
	if d.Weekday() != "Saturday" {
		t.Errorf("2004-01-31 weekday = %s, want Saturday", d.Weekday())
	}
	if d.MonthName() != "January" {
		t.Errorf("month name = %s", d.MonthName())
	}
}

func TestProsePageLayout(t *testing.T) {
	days := WeatherSeries("Barcelona", 2004, 1, 42)
	p := ProsePage(days)
	if !strings.Contains(p.URL, "barcelona-tourist-guide") {
		t.Errorf("URL = %s", p.URL)
	}
	text := ExtractText(p.HTML)
	// Figure 4 layout: "City Weather: Temperature Nº C around N.N F".
	if !strings.Contains(text, "Barcelona Weather: Temperature") {
		t.Errorf("prose page missing Figure 4 layout:\n%s", text[:200])
	}
	if !strings.Contains(text, "º C") || !strings.Contains(text, " F ") {
		t.Error("prose page missing temperature units")
	}
	if len(p.Gold) != 31 {
		t.Errorf("gold facts = %d, want 31", len(p.Gold))
	}
	// The Celsius and Fahrenheit figures must be consistent.
	d := days[0]
	want := fmt.Sprintf("Temperature %dº C around %.1f F", d.HighC, float64(d.HighC)*1.8+32)
	if !strings.Contains(text, want) {
		t.Errorf("C/F mismatch: %q not in page", want)
	}
}

func TestTablePageLayout(t *testing.T) {
	days := WeatherSeries("Madrid", 2004, 1, 42)
	p := TablePage(days)
	if !strings.Contains(p.HTML, "<table>") || !strings.Contains(p.HTML, "<th>High (ºC)</th>") {
		t.Error("table page missing table structure")
	}
	if len(p.Gold) != 31 {
		t.Errorf("gold facts = %d", len(p.Gold))
	}
}

func TestEmptyPages(t *testing.T) {
	if p := ProsePage(nil); p.URL != "" || len(p.Gold) != 0 {
		t.Error("empty prose page should be zero")
	}
	if p := TablePage(nil); p.URL != "" {
		t.Error("empty table page should be zero")
	}
}

func TestExtractTextStripsTags(t *testing.T) {
	html := `<html><body><h1>Title</h1><p>Hello <b>world</b>.</p><p>Second block.</p></body></html>`
	text := ExtractText(html)
	if strings.Contains(text, "<") || strings.Contains(text, ">") {
		t.Errorf("tags left in output: %q", text)
	}
	if !strings.Contains(text, "Hello world .") && !strings.Contains(text, "Hello world.") {
		t.Errorf("content lost: %q", text)
	}
	lines := strings.Split(text, "\n")
	if len(lines) < 3 {
		t.Errorf("block boundaries lost: %q", text)
	}
}

func TestExtractTextMalformed(t *testing.T) {
	for _, html := range []string{"<p>unclosed", "no tags at all", "<", "<<<>>>", ""} {
		_ = ExtractText(html) // must not panic
	}
	if got := ExtractText("<p>unclosed tag <b>bold"); !strings.Contains(got, "unclosed tag") {
		t.Errorf("best-effort extraction failed: %q", got)
	}
}

// The Figure 5 failure mode: naive linearisation detaches values from
// units; the table-aware extractor re-attaches them.
func TestTableLinearization(t *testing.T) {
	days := WeatherSeries("Madrid", 2004, 1, 42)
	p := TablePage(days)

	naive := ExtractText(p.HTML)
	if strings.Contains(naive, "High (ºC) "+itoa(days[0].HighC)) {
		t.Error("naive extraction should NOT attach headers to cells")
	}

	aware := ExtractTextTableAware(p.HTML)
	want := fmt.Sprintf("High (ºC) %d.", days[0].HighC)
	if !strings.Contains(aware, want) {
		t.Errorf("table-aware extraction missing %q in:\n%s", want, aware[:300])
	}
	// Dates must also be labelled.
	if !strings.Contains(aware, "Date January") {
		t.Error("table-aware extraction missing date labels")
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestExtractTableAwareNoTables(t *testing.T) {
	html := "<p>Just a paragraph with 8º C inside.</p>"
	if got, want := ExtractTextTableAware(html), ExtractText(html); got != want {
		t.Errorf("no-table documents should extract identically:\n%q\nvs\n%q", got, want)
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	a := Build(DefaultConfig())
	b := Build(DefaultConfig())
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || a.Pages[i].HTML != b.Pages[i].HTML {
			t.Fatalf("page %d differs between builds", i)
		}
	}
}

func TestBuildCorpusComposition(t *testing.T) {
	cfg := DefaultConfig()
	c := Build(cfg)
	weatherPages := len(cfg.Cities) * len(cfg.Months)
	wantPages := weatherPages + len(DistractorPages())
	if len(c.Pages) != wantPages {
		t.Errorf("corpus has %d pages, want %d", len(c.Pages), wantPages)
	}
	tables := 0
	for _, p := range c.Pages {
		if strings.Contains(p.HTML, "<table>") {
			tables++
		}
	}
	// TableShare 0.3 over 18 weather pages → 5 tables (deterministic
	// accumulator), allow exact check.
	if tables != 5 {
		t.Errorf("table pages = %d, want 5", tables)
	}
}

func TestGoldHigh(t *testing.T) {
	c := Build(DefaultConfig())
	days := c.Weather["Barcelona"][1]
	v, ok := c.GoldHigh("Barcelona", 2004, 1, days[30].Day)
	if !ok || v != float64(days[30].HighC) {
		t.Errorf("GoldHigh = %v,%v want %d", v, ok, days[30].HighC)
	}
	if _, ok := c.GoldHigh("Atlantis", 2004, 1, 1); ok {
		t.Error("unknown city should have no gold")
	}
	if _, ok := c.GoldHigh("Barcelona", 2004, 12, 1); ok {
		t.Error("uncovered month should have no gold")
	}
}

func TestDocumentsConversion(t *testing.T) {
	c := Build(DefaultConfig())
	docs := c.Documents(false)
	if len(docs) != len(c.Pages) {
		t.Fatalf("documents = %d, pages = %d", len(docs), len(c.Pages))
	}
	for _, d := range docs {
		if strings.TrimSpace(d.Text) == "" {
			t.Errorf("empty extracted text for %s", d.URL)
		}
		if strings.Contains(d.Text, "<td>") {
			t.Errorf("unstripped HTML in %s", d.URL)
		}
	}
}

func TestPageLookup(t *testing.T) {
	c := Build(DefaultConfig())
	if c.Page(c.Pages[0].URL) == nil {
		t.Error("Page lookup by URL failed")
	}
	if c.Page("http://nope.example/") != nil {
		t.Error("unknown URL should be nil")
	}
}

func TestDistractorsCarryAmbiguity(t *testing.T) {
	var all string
	for _, p := range DistractorPages() {
		all += ExtractText(p.HTML) + "\n"
	}
	for _, want := range []string{"John Wayne", "El Prat", "La Guardia", "financial crisis", "Sirius"} {
		if !strings.Contains(all, want) {
			t.Errorf("distractors missing %q", want)
		}
	}
}

func BenchmarkBuildCorpus(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(cfg)
	}
}

func BenchmarkExtractTextTableAware(b *testing.B) {
	p := TablePage(WeatherSeries("Madrid", 2004, 1, 42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractTextTableAware(p.HTML)
	}
}
