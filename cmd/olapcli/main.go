// Command olapcli runs OLAP queries against the populated Last Minute
// Sales warehouse (after running the integration, so the Weather fact is
// fed too).
//
// Usage:
//
//	olapcli -fact LastMinuteSales -measure Price -agg sum \
//	        -group Destination:City -group Date:Month \
//	        -filter "Destination:Country=Spain,USA"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwqa"
	"dwqa/internal/dw"
)

type multi []string

func (m *multi) String() string     { return strings.Join(*m, ";") }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	fact := flag.String("fact", "LastMinuteSales", "fact table to query")
	measure := flag.String("measure", "Price", "measure to aggregate")
	agg := flag.String("agg", "sum", "aggregation: sum|count|avg|min|max")
	skipFeed := flag.Bool("skip-feed", false, "skip the integration (Weather fact stays empty)")
	var groups, filters multi
	flag.Var(&groups, "group", "group-by as Role:Level (repeatable)")
	flag.Var(&filters, "filter", "filter as Role:Level=V1,V2 (repeatable)")
	flag.Parse()

	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if !*skipFeed {
		if err := p.RunAll(); err != nil {
			fatal(err)
		}
	}

	q := dw.Query{Fact: *fact, Measure: *measure, Agg: dw.Agg(*agg)}
	for _, g := range groups {
		role, level, ok := splitRoleLevel(g)
		if !ok {
			fatalf("bad -group %q, want Role:Level", g)
		}
		q.GroupBy = append(q.GroupBy, dw.LevelSel{Role: role, Level: level})
	}
	for _, f := range filters {
		eq := strings.SplitN(f, "=", 2)
		if len(eq) != 2 {
			fatalf("bad -filter %q, want Role:Level=V1,V2", f)
		}
		role, level, ok := splitRoleLevel(eq[0])
		if !ok {
			fatalf("bad -filter %q, want Role:Level=V1,V2", f)
		}
		q.Filters = append(q.Filters, dw.Filter{Role: role, Level: level, Values: strings.Split(eq[1], ",")})
	}

	res, err := p.Warehouse.Execute(q)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func splitRoleLevel(s string) (string, string, bool) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olapcli:", err)
	os.Exit(1)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "olapcli: "+format+"\n", args...)
	os.Exit(1)
}
