package core

import (
	"fmt"

	"dwqa/internal/dw"
	"dwqa/internal/etl"
	"dwqa/internal/ir"
	"dwqa/internal/ontology"
	"dwqa/internal/store"
	"dwqa/internal/webcorpus"
	"dwqa/internal/wordnet"
)

// The durable pipeline: OpenPipeline boots from a data directory,
// recovering the warehouse, index and ontology from the newest valid
// snapshot plus the WAL tail — or building them fresh on first boot —
// and attaches the journals so every subsequent feed is persisted.
//
// Recovery invariants (tested by recovery_test.go):
//
//   - Restore is a bulk load: warehouse columns, index postings and
//     analysed sentences come straight out of the snapshot; nothing is
//     re-tokenised, re-interned or re-windowed.
//   - WAL replay is idempotent by construction: records covered by the
//     snapshot (seq ≤ its WALSeq) are skipped, replay truncates at the
//     first corrupt record, and the Step 5 loader's dedup state is
//     rebuilt from warehouse provenance, so re-running the same harvest
//     after recovery skips everything that survived.
//   - The cheap deterministic steps (the WordNet merge of Step 3, the
//     Step 4 tuning) re-run at boot from the restored ontology; the
//     expensive state (corpus indexing, harvested facts) never rebuilds.

// OpenPipeline opens dataDir and returns a serving-ready pipeline
// (steps 1-4 complete). With a usable snapshot in the directory the
// pipeline is recovered — warehouse, index and ontology restored, WAL
// tail replayed, loader dedup rebuilt. Otherwise the scenario pipeline is
// built fresh, integrated through Step 4 and published as the initial
// snapshot. Either way the store's journals are attached before return,
// so every later feed (Step5FeedWarehouse, /harvest) lands in the WAL,
// and the engine is wired for SnapshotTo/background snapshots.
//
// The caller owns the store lifecycle: close the pipeline's Store (see
// Pipeline.Store) when done, ideally after a final Engine().SnapshotTo().
func OpenPipeline(cfg Config, dataDir string) (*Pipeline, *store.RecoveryInfo, error) {
	return OpenPipelineFS(cfg, dataDir, store.OS())
}

// OpenPipelineFS is OpenPipeline over an explicit filesystem — the seam
// the chaos tests use to boot a durable pipeline on a fault-injecting
// store.FaultFS and drive it through scheduled disk failures.
func OpenPipelineFS(cfg Config, dataDir string, fsys store.FS) (*Pipeline, *store.RecoveryInfo, error) {
	st, err := store.OpenFS(dataDir, fsys)
	if err != nil {
		return nil, nil, err
	}
	p, info, err := openWithStore(cfg, st)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return p, info, nil
}

func openWithStore(cfg Config, st *store.Store) (*Pipeline, *store.RecoveryInfo, error) {
	state, path, err := st.LoadSnapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	info := &store.RecoveryInfo{WALRepaired: st.WALRepaired()}
	var p *Pipeline
	if state != nil {
		info.Recovered = true
		info.SnapshotPath = path
		info.SnapshotSeq = state.WALSeq
		p, err = recoverPipeline(cfg, state)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// First boot (or a directory holding only a WAL from a run that
		// crashed before its first snapshot): build the deterministic
		// baseline the WAL records were logged against.
		p, err = NewPipeline(cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := p.integrateToStep4(); err != nil {
			return nil, nil, err
		}
	}

	// Replay the WAL tail on top (snapshot-covered records are skipped by
	// the sequence gate; on a fresh boot afterSeq is 0 and everything in
	// the log re-applies to the deterministic baseline).
	replayed, err := st.Replay(info.SnapshotSeq, store.ReplayHandlers{
		Members:  p.Warehouse.AddMembers,
		FactRows: func(fact string, rows []dw.FactRow) error { return p.Warehouse.AddFactRows(fact, rows) },
		Document: p.Index.Add,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: WAL replay: %w", err)
	}
	info.WALReplayed = replayed

	// The Step 5 loader must skip every record already in the warehouse
	// when a harvest re-runs after recovery.
	loader, err := etl.NewLoader(p.Ontology, p.Warehouse, "Weather", "City", "Date")
	if err != nil {
		return nil, nil, err
	}
	if _, err := loader.RestoreDedup(); err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	p.Loader = loader
	p.st = st
	p.recovery = info
	p.mu.Unlock()

	if !info.Recovered {
		// Publish the initial snapshot so the next boot restores instead
		// of rebuilding (it also absorbs any replayed orphan WAL).
		if err := p.writeInitialSnapshot(st); err != nil {
			return nil, nil, err
		}
	}

	// Journals attach last: everything before this point is either inside
	// the snapshot or already in the WAL; everything after gets logged.
	p.Warehouse.SetJournal(st)
	p.Index.SetJournal(st)
	return p, info, nil
}

// configFingerprint renders the state-shaping scenario parameters — the
// ones that decide what the corpus, index and warehouse contain. A
// snapshot taken under one fingerprint must never be grafted onto a
// pipeline configured with another (the restored index would not match
// the regenerated corpus metadata, and harvest dedup keys would drift).
func configFingerprint(cfg Config) string {
	cfg = normalizeConfig(cfg)
	fp := fmt.Sprintf("seed=%d year=%d months=%v scale=%d passage=%d tableAware=%v",
		cfg.Seed, cfg.Year, cfg.Months, cfg.ScaleFactor, cfg.PassageSize, cfg.TableAware)
	if cfg.Corpus != nil {
		fp += fmt.Sprintf(" corpus=%+v", *cfg.Corpus)
	}
	return fp
}

// recoverPipeline rebuilds a pipeline around restored state: bulk-import
// the warehouse and index, adopt the ontology, rebuild the cheap derived
// pieces (corpus metadata, lexicon merge, QA tuning).
func recoverPipeline(cfg Config, state *State) (*Pipeline, error) {
	cfg = normalizeConfig(cfg)
	if state.Fingerprint != "" && state.Fingerprint != configFingerprint(cfg) {
		return nil, fmt.Errorf(
			"core: data directory was created with different scenario parameters (%s) than this boot (%s); restart with matching flags or a fresh data directory",
			state.Fingerprint, configFingerprint(cfg))
	}
	schema := Figure1Schema()
	wh, err := dw.New(schema)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := wh.Import(state.DW); err != nil {
		return nil, fmt.Errorf("core: restoring warehouse: %w", err)
	}
	index := ir.NewIndex() // geometry comes from the snapshot
	if err := index.Import(state.IR); err != nil {
		return nil, fmt.Errorf("core: restoring index: %w", err)
	}
	onto, err := ontology.FromSnapshot(state.Onto)
	if err != nil {
		return nil, fmt.Errorf("core: restoring ontology: %w", err)
	}

	// The corpus object itself is synthetic and cheap (page metadata, no
	// indexing); rebuild it — through the same derivation NewPipeline
	// uses — so WeatherQuestions and Summary keep working.
	corpus := webcorpus.Build(corpusConfig(cfg))

	p := &Pipeline{
		Config:    cfg,
		Schema:    schema,
		Warehouse: wh,
		Corpus:    corpus,
		Index:     index,
		Lexicon:   wordnet.Seed(),
		Ontology:  onto,
	}
	// Steps 1-2 live inside the restored ontology; re-run the cheap
	// deterministic tail (Step 3 merges into the fresh lexicon, Step 4
	// re-tunes — axiom re-adds are no-ops on the restored ontology).
	p.step.Store(2)
	if err := p.Step3MergeUpperOntology(); err != nil {
		return nil, err
	}
	if err := p.Step4TuneQA(); err != nil {
		return nil, err
	}
	return p, nil
}

// State is re-exported for the durability benchmarks.
type State = store.State

// integrateToStep4 runs the setup steps of the five-step model.
func (p *Pipeline) integrateToStep4() error {
	if err := p.Step1DeriveOntology(); err != nil {
		return err
	}
	if err := p.Step2FeedOntology(); err != nil {
		return err
	}
	if err := p.Step3MergeUpperOntology(); err != nil {
		return err
	}
	return p.Step4TuneQA()
}

// writeInitialSnapshot publishes the post-integration baseline.
func (p *Pipeline) writeInitialSnapshot(st *store.Store) error {
	state, err := p.ExportState()
	if err != nil {
		return err
	}
	state.WALSeq = st.Seq()
	if _, err := st.WriteSnapshot(state); err != nil {
		return err
	}
	return nil
}

// ExportState implements engine.SnapshotSource: a deep copy of the
// warehouse, index and ontology. The engine calls it with feed commits
// quiesced; callers driving feeds outside the engine must quiesce them
// themselves.
func (p *Pipeline) ExportState() (*store.State, error) {
	if p.Ontology == nil {
		return nil, fmt.Errorf("core: nothing to export before Step 1 (no ontology)")
	}
	return &store.State{
		Fingerprint: configFingerprint(p.Config),
		DW:          p.Warehouse.Export(),
		IR:          p.Index.Export(),
		Onto:        p.Ontology.Export(),
	}, nil
}

// StateCounts implements engine.SnapshotSource.
func (p *Pipeline) StateCounts() (members, factRows int) {
	return p.Warehouse.Counts()
}

// Store returns the durable store this pipeline was opened over, or nil
// for a purely in-memory pipeline.
func (p *Pipeline) Store() *store.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// RecoveryInfo returns what OpenPipeline recovered (nil for in-memory
// pipelines).
func (p *Pipeline) RecoveryInfo() *store.RecoveryInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recovery
}
