package ir

import (
	"fmt"

	"dwqa/internal/nlp"
)

// This file is the retrieval half of the durability subsystem
// (internal/store): bulk export and import of the inverted index —
// documents, analysed sentences, passage windows, the interned term
// dictionary and both posting stores — plus the redo-journal hook that
// records indexed documents.

// PassageRef is the exported form of one passage window.
type PassageRef struct {
	Doc       int32
	SentStart int32
	SentEnd   int32
}

// Snapshot is a point-in-time copy of the index. Terms[i] is the lemma
// interned as term id i — the append-only id invariant means a snapshot
// restored and then grown by replayed Adds assigns exactly the ids the
// uninterrupted run would have. Produced by Export, consumed by Import;
// internal/store gives it a binary encoding.
type Snapshot struct {
	PassageSize int
	Stride      int
	Docs        []Document
	DocSents    [][]nlp.Sentence
	Passages    []PassageRef
	Terms       []string    // term id → lemma
	Postings    [][]Posting // term id → passage postings, ascending ids
	DocPostings [][]Posting // term id → document postings, ascending ids
}

// Export copies the full index state under the read lock. The outer
// slices are fresh; sentence and token values are shared (they are
// immutable once indexed).
func (ix *Index) Export() *Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := &Snapshot{
		PassageSize: ix.passageSize,
		Stride:      ix.stride,
		Docs:        append([]Document(nil), ix.docs...),
		DocSents:    make([][]nlp.Sentence, len(ix.docSents)),
		Passages:    make([]PassageRef, len(ix.passages)),
		Terms:       make([]string, len(ix.terms)),
		Postings:    make([][]Posting, len(ix.postings)),
		DocPostings: make([][]Posting, len(ix.docPostings)),
	}
	for i, sents := range ix.docSents {
		snap.DocSents[i] = append([]nlp.Sentence(nil), sents...)
	}
	for i, pe := range ix.passages {
		snap.Passages[i] = PassageRef{Doc: int32(pe.doc), SentStart: int32(pe.sentStart), SentEnd: int32(pe.sentEnd)}
	}
	for lemma, id := range ix.terms {
		snap.Terms[id] = lemma
	}
	copyPostings := func(dst, src [][]Posting) {
		for i, posts := range src {
			if len(posts) == 0 {
				continue
			}
			dst[i] = append([]Posting(nil), posts...) // flat structs: one memmove
		}
	}
	copyPostings(snap.Postings, ix.postings)
	copyPostings(snap.DocPostings, ix.docPostings)
	return snap
}

// Import restores a snapshot into an empty index as a bulk load: posting
// lists, passage windows and analysed sentences are installed wholesale —
// no re-tokenisation, re-interning or window rebuilding (contrast Add,
// which does all three per document). The term dictionary map is rebuilt
// in a single pass over Terms. Window geometry (passage size, stride) is
// taken from the snapshot, overriding any NewIndex options, because it
// describes the windows already built. Shape mismatches fail loudly
// before anything is installed.
func (ix *Index) Import(snap *Snapshot) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.docs) != 0 || len(ix.terms) != 0 {
		return fmt.Errorf("ir: import into a non-empty index")
	}
	if snap.PassageSize < 1 || snap.Stride < 1 || snap.Stride > snap.PassageSize {
		return fmt.Errorf("ir: import: invalid window geometry (size %d, stride %d)", snap.PassageSize, snap.Stride)
	}
	if len(snap.DocSents) != len(snap.Docs) {
		return fmt.Errorf("ir: import: %d documents but %d sentence sets", len(snap.Docs), len(snap.DocSents))
	}
	if len(snap.Postings) != len(snap.Terms) || len(snap.DocPostings) != len(snap.Terms) {
		return fmt.Errorf("ir: import: %d terms but %d/%d posting lists",
			len(snap.Terms), len(snap.Postings), len(snap.DocPostings))
	}
	for i, pe := range snap.Passages {
		if int(pe.Doc) < 0 || int(pe.Doc) >= len(snap.Docs) {
			return fmt.Errorf("ir: import: passage %d references document %d of %d", i, pe.Doc, len(snap.Docs))
		}
		sents := snap.DocSents[pe.Doc]
		if pe.SentStart < 0 || pe.SentEnd <= pe.SentStart || int(pe.SentEnd) > len(sents) {
			return fmt.Errorf("ir: import: passage %d window [%d:%d) out of range (document %d has %d sentences)",
				i, pe.SentStart, pe.SentEnd, pe.Doc, len(sents))
		}
	}
	terms := make(map[string]int32, len(snap.Terms))
	for id, lemma := range snap.Terms {
		if _, dup := terms[lemma]; dup {
			return fmt.Errorf("ir: import: duplicate term %q in dictionary", lemma)
		}
		terms[lemma] = int32(id)
	}
	checkPostings := func(kind string, lists [][]Posting, limit int) error {
		for id, posts := range lists {
			prev := int32(-1)
			for _, p := range posts {
				if p.ID <= prev || int(p.ID) >= limit {
					return fmt.Errorf("ir: import: term %d has out-of-order or out-of-range %s posting %d", id, kind, p.ID)
				}
				if p.TF < 1 {
					return fmt.Errorf("ir: import: term %d %s posting %d has tf %d", id, kind, p.ID, p.TF)
				}
				prev = p.ID
			}
		}
		return nil
	}
	if err := checkPostings("passage", snap.Postings, len(snap.Passages)); err != nil {
		return err
	}
	if err := checkPostings("document", snap.DocPostings, len(snap.Docs)); err != nil {
		return err
	}

	ix.passageSize = snap.PassageSize
	ix.stride = snap.Stride
	ix.docs = append([]Document(nil), snap.Docs...)
	ix.byURL = make(map[string]int, len(snap.Docs))
	for i, d := range snap.Docs {
		if _, ok := ix.byURL[d.URL]; !ok {
			ix.byURL[d.URL] = i
		}
	}
	ix.docSents = make([][]nlp.Sentence, len(snap.DocSents))
	for i, sents := range snap.DocSents {
		ix.docSents[i] = append([]nlp.Sentence(nil), sents...)
	}
	ix.passages = make([]passageEntry, len(snap.Passages))
	for i, pe := range snap.Passages {
		ix.passages[i] = passageEntry{
			doc: int(pe.Doc), sentStart: int(pe.SentStart), sentEnd: int(pe.SentEnd), sentOffset: int(pe.SentStart),
		}
	}
	ix.terms = terms
	// Posting lists are adopted by copy of the outer slices only: the
	// validated inner lists are installed as-is (the caller's snapshot
	// must not be mutated afterwards; recovery decodes a fresh one).
	ix.postings = append([][]Posting(nil), snap.Postings...)
	ix.docPostings = append([][]Posting(nil), snap.DocPostings...)
	return nil
}

// Journal receives every successfully indexed document — the redo log of
// the durability subsystem (internal/store). Replaying the documents in
// log order on top of a restored snapshot reproduces the exact index
// state, including term ids (the dictionary is append-only in
// first-occurrence order).
type Journal interface {
	LogDocument(doc Document) error
	// LogDocuments records one indexed batch (AddBatch) as a single log
	// record — one fsync per batch instead of per document.
	LogDocuments(docs []Document) error
}

// SetJournal installs (or, with nil, removes) the redo journal. Each Add
// logs its document under the write lock after the document is fully
// indexed, so the log preserves indexing order and only acked documents
// appear in it. Recovery must attach the journal only after WAL replay.
func (ix *Index) SetJournal(j Journal) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.journal = j
}
