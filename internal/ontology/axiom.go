package ontology

import "fmt"

// AxiomKind distinguishes the axiom flavours the paper's Step 4 attaches
// to answer-type concepts ("the temperature concept in the ontology is
// updated with the axiomatic information that is required in a temperature
// answer: that a temperature is composed by a number followed by the scale
// (Celsius or Fahrenheit), the right temperature intervals, the conversion
// formulae between Celsius and Fahrenheit scales, etc.").
type AxiomKind string

// Axiom kinds.
const (
	AxiomValueFormat    AxiomKind = "value-format"    // number followed by a unit
	AxiomValueRange     AxiomKind = "value-range"     // valid interval in a unit
	AxiomUnitConversion AxiomKind = "unit-conversion" // linear unit conversion
)

// Axiom is machine-usable domain knowledge attached to a concept. Both the
// QA answer extractor (candidate filtering) and the Step 5 ETL (record
// validation) consume axioms — the double use the paper describes.
type Axiom struct {
	Concept string    // owning concept, e.g. "Temperature"
	Kind    AxiomKind // which flavour
	// ValueFormat / ValueRange fields.
	Units []string // acceptable unit spellings, e.g. ºC, C, Celsius
	Unit  string   // unit the Min/Max interval is expressed in
	Min   float64
	Max   float64
	// UnitConversion fields: to = from*Scale + Offset.
	FromUnit string
	ToUnit   string
	Scale    float64
	Offset   float64
}

// AddAxiom attaches an axiom to its owning concept (created if absent).
// Re-adding an axiom that is already present is a no-op, so the Step 4
// tuning can run again over a recovered ontology without duplicating
// knowledge.
func (o *Ontology) AddAxiom(a Axiom) error {
	if a.Concept == "" {
		return fmt.Errorf("ontology: axiom without concept")
	}
	switch a.Kind {
	case AxiomValueFormat:
		if len(a.Units) == 0 {
			return fmt.Errorf("ontology: value-format axiom for %q needs units", a.Concept)
		}
	case AxiomValueRange:
		if a.Min > a.Max {
			return fmt.Errorf("ontology: value-range axiom for %q has min > max", a.Concept)
		}
	case AxiomUnitConversion:
		if a.FromUnit == "" || a.ToUnit == "" {
			return fmt.Errorf("ontology: unit-conversion axiom for %q needs both units", a.Concept)
		}
		if a.Scale == 0 {
			return fmt.Errorf("ontology: unit-conversion axiom for %q has zero scale", a.Concept)
		}
	default:
		return fmt.Errorf("ontology: unknown axiom kind %q", a.Kind)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.addConceptLocked(a.Concept)
	for _, existing := range c.Axioms {
		if axiomsEqual(existing, a) {
			return nil
		}
	}
	c.Axioms = append(c.Axioms, a)
	return nil
}

// axiomsEqual reports whether two axioms carry identical knowledge.
func axiomsEqual(a, b Axiom) bool {
	if a.Concept != b.Concept || a.Kind != b.Kind ||
		a.Unit != b.Unit || a.Min != b.Min || a.Max != b.Max ||
		a.FromUnit != b.FromUnit || a.ToUnit != b.ToUnit ||
		a.Scale != b.Scale || a.Offset != b.Offset ||
		len(a.Units) != len(b.Units) {
		return false
	}
	for i := range a.Units {
		if a.Units[i] != b.Units[i] {
			return false
		}
	}
	return true
}

// AxiomsFor returns the axioms of the given kind on a concept.
func (o *Ontology) AxiomsFor(concept string, kind AxiomKind) []Axiom {
	c := o.Concept(concept)
	if c == nil {
		return nil
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []Axiom
	for _, a := range c.Axioms {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// Convert applies a unit-conversion axiom chain on the concept to express
// value (given in fromUnit) in toUnit. It tries a direct axiom, then the
// inverse of a declared axiom. Returns an error when no conversion exists.
func (o *Ontology) Convert(concept string, value float64, fromUnit, toUnit string) (float64, error) {
	if c := o.Concept(concept); c != nil {
		o.mu.RLock()
		v, ok := convertLocked(c, value, fromUnit, toUnit)
		o.mu.RUnlock()
		if ok {
			return v, nil
		}
	} else if equalNormalized(fromUnit, toUnit) {
		return value, nil
	}
	return 0, fmt.Errorf("ontology: no conversion from %q to %q on %q", fromUnit, toUnit, concept)
}

// convertLocked resolves a conversion against the concept's axioms. The
// caller holds at least the read lock; nothing is allocated — this runs
// once per answer candidate under QA's axiom validation.
func convertLocked(c *Concept, value float64, fromUnit, toUnit string) (float64, bool) {
	if equalNormalized(fromUnit, toUnit) {
		return value, true
	}
	for i := range c.Axioms {
		a := &c.Axioms[i]
		if a.Kind != AxiomUnitConversion {
			continue
		}
		if equalNormalized(a.FromUnit, fromUnit) && equalNormalized(a.ToUnit, toUnit) {
			return value*a.Scale + a.Offset, true
		}
		if equalNormalized(a.FromUnit, toUnit) && equalNormalized(a.ToUnit, fromUnit) {
			return (value - a.Offset) / a.Scale, true
		}
	}
	return 0, false
}

// InRange checks value (in unit) against the concept's value-range axioms,
// converting units when necessary. With no range axiom it returns true.
// The axiom walk and unit comparisons are in place and allocation-free —
// this is the QA extractor's per-candidate validation call.
func (o *Ontology) InRange(concept string, value float64, unit string) (bool, error) {
	c := o.Concept(concept)
	if c == nil {
		return true, nil
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	sawRange := false
	for i := range c.Axioms {
		a := &c.Axioms[i]
		if a.Kind != AxiomValueRange {
			continue
		}
		sawRange = true
		v := value
		if !equalNormalized(unit, a.Unit) {
			converted, ok := convertLocked(c, value, unit, a.Unit)
			if !ok {
				return false, fmt.Errorf("ontology: no conversion from %q to %q on %q", unit, a.Unit, concept)
			}
			v = converted
		}
		if v >= a.Min && v <= a.Max {
			return true, nil
		}
	}
	return !sawRange, nil
}

// UnitKnown reports whether the unit spelling appears in any value-format
// axiom of the concept.
func (o *Ontology) UnitKnown(concept, unit string) bool {
	c := o.Concept(concept)
	if c == nil {
		return false
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	for i := range c.Axioms {
		a := &c.Axioms[i]
		if a.Kind != AxiomValueFormat {
			continue
		}
		for _, u := range a.Units {
			if equalNormalized(u, unit) {
				return true
			}
		}
	}
	return false
}
