// Package dw implements the data warehouse engine beneath the BI side of
// the integration: star-schema storage for a multidimensional schema
// (package mdm), surrogate-keyed dimension tables with roll-up hierarchies,
// fact tables, and an OLAP query engine supporting roll-up, drill-down,
// slice and dice with the usual aggregation functions.
package dw

import (
	"fmt"
	"sort"
	"sync"

	"dwqa/internal/mdm"
)

// NoParent marks a member without a parent at the next level.
const NoParent = -1

// Member is a row of a dimension level table: a surrogate key, the
// descriptor value (its name), optional attributes and the surrogate key
// of its parent member at the next coarser level.
type Member struct {
	Key    int
	Name   string
	Attrs  map[string]string
	Parent int // surrogate key at RollsUpTo level, or NoParent
}

// levelTable stores the members of one dimension level.
type levelTable struct {
	members []Member
	byName  map[string]int // descriptor value → surrogate key
}

func newLevelTable() *levelTable {
	return &levelTable{byName: make(map[string]int)}
}

// dimensionData stores every level table of one dimension.
type dimensionData struct {
	class  *mdm.DimensionClass
	levels map[string]*levelTable
}

// Warehouse is a populated star schema. It is safe for concurrent use;
// loads take the write lock, queries the read lock. Fact tables are stored
// columnar (see factData); roll-up lookup arrays are memoised per
// (dimension, level) and invalidated on member writes.
type Warehouse struct {
	mu     sync.RWMutex
	schema *mdm.Schema
	dims   map[string]*dimensionData
	facts  map[string]*factData

	// journal, when set, receives every committed write batch while the
	// write lock is still held, so the log preserves commit order. See
	// SetJournal for the durability contract.
	journal Journal

	memoMu  sync.Mutex
	rollups map[rollupMemoKey][]int32
}

// Journal receives the warehouse's committed write batches — the redo log
// of the durability subsystem (internal/store). Implementations append
// the batch to stable storage and return any I/O error.
type Journal interface {
	LogMembers(specs []MemberSpec) error
	LogFactRows(fact string, rows []FactRow) error
	// LogBatch records one combined member+fact-row commit (AddBatch) as a
	// single log record, so a crash can never replay the members without
	// their rows.
	LogBatch(specs []MemberSpec, fact string, rows []FactRow) error
}

// SetJournal installs (or, with nil, removes) the redo journal. Every
// subsequent successful AddMember/AddMembers call and every validated
// AddFact/AddFactRows batch is logged under the write lock, in commit
// order. Because the warehouse itself is volatile, logging inside the
// commit (after validation, before the caller is acked) gives write-ahead
// semantics: a batch is recoverable if and only if its caller saw
// success. Recovery must attach the journal only after WAL replay, or
// replayed batches would be re-logged.
func (w *Warehouse) SetJournal(j Journal) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.journal = j
}

// New builds an empty warehouse for a validated schema.
func New(schema *mdm.Schema) (*Warehouse, error) {
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("dw: invalid schema: %w", err)
	}
	w := &Warehouse{
		schema: schema,
		dims:   make(map[string]*dimensionData),
		facts:  make(map[string]*factData),
	}
	for _, d := range schema.Dimensions {
		dd := &dimensionData{class: d, levels: make(map[string]*levelTable)}
		for _, l := range d.Levels {
			dd.levels[l.Name] = newLevelTable()
		}
		w.dims[d.Name] = dd
	}
	for _, f := range schema.Facts {
		w.facts[f.Name] = newFactData(f)
	}
	return w, nil
}

// Schema returns the schema the warehouse was built for.
func (w *Warehouse) Schema() *mdm.Schema { return w.schema }

// AddMember inserts (or finds) a member of a dimension level and returns
// its surrogate key. parentName names the member's parent at the
// RollsUpTo level and must already exist ("" for top levels or unknown
// parents). Re-adding an existing member updates its attributes and parent
// when provided.
func (w *Warehouse) AddMember(dim, level, name string, attrs map[string]string, parentName string) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	key, err := w.addMemberLocked(dim, level, name, attrs, parentName)
	if err != nil {
		return 0, err
	}
	if w.journal != nil {
		spec := MemberSpec{Dim: dim, Level: level, Name: name, Parent: parentName, Attrs: attrs}
		if jerr := w.journal.LogMembers([]MemberSpec{spec}); jerr != nil {
			return 0, fmt.Errorf("dw: journal: %w", jerr)
		}
	}
	return key, nil
}

func (w *Warehouse) addMemberLocked(dim, level, name string, attrs map[string]string, parentName string) (int, error) {
	dd, ok := w.dims[dim]
	if !ok {
		return 0, fmt.Errorf("dw: unknown dimension %q", dim)
	}
	lt, ok := dd.levels[level]
	if !ok {
		return 0, fmt.Errorf("dw: unknown level %q of dimension %q", level, dim)
	}
	if name == "" {
		return 0, fmt.Errorf("dw: empty member name for %s.%s", dim, level)
	}
	lvl := dd.class.Level(level)
	parent := NoParent
	if parentName != "" {
		if lvl.RollsUpTo == "" {
			return 0, fmt.Errorf("dw: level %q of %q is the hierarchy top, cannot have parent %q", level, dim, parentName)
		}
		pt := dd.levels[lvl.RollsUpTo]
		pk, ok := pt.byName[parentName]
		if !ok {
			return 0, fmt.Errorf("dw: parent %q not found at level %q of %q", parentName, lvl.RollsUpTo, dim)
		}
		parent = pk
	}
	if key, ok := lt.byName[name]; ok {
		m := &lt.members[key]
		for k, v := range attrs {
			if m.Attrs == nil {
				m.Attrs = make(map[string]string)
			}
			m.Attrs[k] = v
		}
		if parent != NoParent && m.Parent != parent {
			m.Parent = parent
			w.invalidateRollups()
		}
		return key, nil
	}
	w.invalidateRollups()
	key := len(lt.members)
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	lt.members = append(lt.members, Member{Key: key, Name: name, Attrs: cp, Parent: parent})
	lt.byName[name] = key
	return key, nil
}

// MemberSpec describes one member for batch insertion via AddMembers.
type MemberSpec struct {
	Dim    string
	Level  string
	Name   string
	Parent string // parent member name at the RollsUpTo level; "" for none
	Attrs  map[string]string
}

// AddMembers inserts a batch of members under a single lock acquisition —
// the bulk path the QA feed uses when Step 5 loads a month of harvested
// records at once. Specs are applied in order, so parents must precede
// their children (or already exist). The first failing spec aborts the
// batch; members inserted before it remain (AddMember semantics).
func (w *Warehouse) AddMembers(specs []MemberSpec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range specs {
		if _, err := w.addMemberLocked(s.Dim, s.Level, s.Name, s.Attrs, s.Parent); err != nil {
			return err
		}
	}
	// Journalled only when the whole batch applied: a failing spec aborts
	// with nothing logged, so recovery drops the (unacked) applied prefix
	// rather than replaying a batch that would fail again.
	if w.journal != nil && len(specs) > 0 {
		if err := w.journal.LogMembers(specs); err != nil {
			return fmt.Errorf("dw: journal: %w", err)
		}
	}
	return nil
}

// MemberKey returns the surrogate key of a member by name, or an error.
func (w *Warehouse) MemberKey(dim, level, name string) (int, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	dd, ok := w.dims[dim]
	if !ok {
		return 0, fmt.Errorf("dw: unknown dimension %q", dim)
	}
	lt, ok := dd.levels[level]
	if !ok {
		return 0, fmt.Errorf("dw: unknown level %q of dimension %q", level, dim)
	}
	key, ok := lt.byName[name]
	if !ok {
		return 0, fmt.Errorf("dw: member %q not found at %s.%s", name, dim, level)
	}
	return key, nil
}

// Member returns a copy of the member with the given key.
func (w *Warehouse) Member(dim, level string, key int) (Member, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	dd, ok := w.dims[dim]
	if !ok {
		return Member{}, fmt.Errorf("dw: unknown dimension %q", dim)
	}
	lt, ok := dd.levels[level]
	if !ok {
		return Member{}, fmt.Errorf("dw: unknown level %q of dimension %q", level, dim)
	}
	if key < 0 || key >= len(lt.members) {
		return Member{}, fmt.Errorf("dw: key %d out of range at %s.%s", key, dim, level)
	}
	return lt.members[key], nil
}

// ParentName returns the name of a member's parent at the next coarser
// level ("" when the member has no parent or the level is the top).
func (w *Warehouse) ParentName(dim, level, name string) (string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	dd, ok := w.dims[dim]
	if !ok {
		return "", fmt.Errorf("dw: unknown dimension %q", dim)
	}
	lt, ok := dd.levels[level]
	if !ok {
		return "", fmt.Errorf("dw: unknown level %q of dimension %q", level, dim)
	}
	key, ok := lt.byName[name]
	if !ok {
		return "", fmt.Errorf("dw: member %q not found at %s.%s", name, dim, level)
	}
	parent := lt.members[key].Parent
	lvl := dd.class.Level(level)
	if parent == NoParent || lvl.RollsUpTo == "" {
		return "", nil
	}
	return w.memberNameLocked(dim, lvl.RollsUpTo, parent), nil
}

// Members returns the member names of a dimension level, sorted.
func (w *Warehouse) Members(dim, level string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	dd, ok := w.dims[dim]
	if !ok {
		return nil
	}
	lt, ok := dd.levels[level]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(lt.members))
	for _, m := range lt.members {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// MemberCount returns the number of members at a dimension level.
func (w *Warehouse) MemberCount(dim, level string) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if dd, ok := w.dims[dim]; ok {
		if lt, ok := dd.levels[level]; ok {
			return len(lt.members)
		}
	}
	return 0
}

// AddFact appends a fact row. coords maps each role of the fact to a
// base-level member *name*; every role must be present and resolvable.
func (w *Warehouse) AddFact(fact string, coords map[string]string, measures map[string]float64) error {
	return w.AddFactProvenance(fact, coords, measures, "")
}

// AddFactProvenance is AddFact with a lineage string attached to the row.
func (w *Warehouse) AddFactProvenance(fact string, coords map[string]string, measures map[string]float64, provenance string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	fd, ok := w.facts[fact]
	if !ok {
		return fmt.Errorf("dw: unknown fact %q", fact)
	}
	keys, vals, err := w.resolveRowLocked(fd, fact, coords, measures)
	if err != nil {
		return err
	}
	// Write-ahead: the row is fully validated, so log-then-append cannot
	// leave the journal claiming a row the warehouse rejected.
	if w.journal != nil {
		row := FactRow{Coords: coords, Measures: measures, Provenance: provenance}
		if jerr := w.journal.LogFactRows(fact, []FactRow{row}); jerr != nil {
			return fmt.Errorf("dw: journal: %w", jerr)
		}
	}
	fd.appendRow(keys, vals, provenance)
	return nil
}

// FactRow is one row for batch fact loading via AddFactRows.
type FactRow struct {
	Coords     map[string]string  // role → base-level member name
	Measures   map[string]float64 // measure name → value
	Provenance string             // lineage; "" for none
}

// AddFactRows appends a batch of fact rows under a single lock
// acquisition. The batch is atomic: every row is resolved and validated
// before the first one is stored, so a bad row leaves the fact table
// untouched (unlike a loop over AddFact, which commits the prefix).
func (w *Warehouse) AddFactRows(fact string, rows []FactRow) error {
	if len(rows) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	fd, ok := w.facts[fact]
	if !ok {
		return fmt.Errorf("dw: unknown fact %q", fact)
	}
	keys := make([][]int32, len(rows))
	vals := make([][]float64, len(rows))
	for r, row := range rows {
		k, v, err := w.resolveRowLocked(fd, fact, row.Coords, row.Measures)
		if err != nil {
			return fmt.Errorf("dw: batch row %d: %w", r, err)
		}
		keys[r], vals[r] = k, v
	}
	// Write-ahead: every row resolved and validated above, so the batch
	// cannot fail past this point; log it before the first append.
	if w.journal != nil {
		if err := w.journal.LogFactRows(fact, rows); err != nil {
			return fmt.Errorf("dw: journal: %w", err)
		}
	}
	for r := range rows {
		fd.appendRow(keys[r], vals[r], rows[r].Provenance)
	}
	return nil
}

// AddBatch commits a member batch and a fact-row batch as one atomic
// warehouse transaction: either every member and every row lands, or
// nothing does. Everything is validated first against the live tables
// plus a pending overlay (so specs may parent each other and rows may
// reference members introduced earlier in the same batch), then the
// whole transaction is journalled as a single combined WAL record, then
// applied — the apply step cannot fail after validation, so the caller
// never observes members committed without their rows (the failure mode
// a loop of AddMembers-then-AddFactRows has). Specs are applied in
// order; parents must precede their children or already exist. An empty
// batch is a no-op and journals nothing; rows may be empty when only
// members are loaded (fact must still name a known fact when rows are
// present).
func (w *Warehouse) AddBatch(specs []MemberSpec, fact string, rows []FactRow) error {
	if len(specs) == 0 && len(rows) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	// Validate the member specs without mutating: pending tracks names
	// this batch will introduce, keyed (dim, level).
	pending := map[[2]string]map[string]bool{}
	for i, s := range specs {
		dd, ok := w.dims[s.Dim]
		if !ok {
			return fmt.Errorf("dw: batch spec %d: unknown dimension %q", i, s.Dim)
		}
		if _, ok := dd.levels[s.Level]; !ok {
			return fmt.Errorf("dw: batch spec %d: unknown level %q of dimension %q", i, s.Level, s.Dim)
		}
		if s.Name == "" {
			return fmt.Errorf("dw: batch spec %d: empty member name for %s.%s", i, s.Dim, s.Level)
		}
		lvl := dd.class.Level(s.Level)
		if s.Parent != "" {
			if lvl.RollsUpTo == "" {
				return fmt.Errorf("dw: batch spec %d: level %q of %q is the hierarchy top, cannot have parent %q",
					i, s.Level, s.Dim, s.Parent)
			}
			pkey := [2]string{s.Dim, lvl.RollsUpTo}
			if _, ok := dd.levels[lvl.RollsUpTo].byName[s.Parent]; !ok && !pending[pkey][s.Parent] {
				return fmt.Errorf("dw: batch spec %d: parent %q not found at level %q of %q",
					i, s.Parent, lvl.RollsUpTo, s.Dim)
			}
		}
		key := [2]string{s.Dim, s.Level}
		if pending[key] == nil {
			pending[key] = map[string]bool{}
		}
		pending[key][s.Name] = true
	}

	// Validate the rows, allowing base-level coordinates the spec batch
	// introduces.
	var fd *factData
	if len(rows) > 0 {
		var ok bool
		fd, ok = w.facts[fact]
		if !ok {
			return fmt.Errorf("dw: unknown fact %q", fact)
		}
		for r, row := range rows {
			for _, ref := range fd.class.Dimensions {
				name, ok := row.Coords[ref.Role]
				if !ok {
					return fmt.Errorf("dw: batch row %d: fact %q row missing role %q", r, fact, ref.Role)
				}
				dd := w.dims[ref.Dimension]
				base := dd.class.Base()
				if _, ok := dd.levels[base.Name].byName[name]; !ok && !pending[[2]string{ref.Dimension, base.Name}][name] {
					return fmt.Errorf("dw: batch row %d: fact %q role %q: member %q not found at base level %q of %q",
						r, fact, ref.Role, name, base.Name, ref.Dimension)
				}
			}
			for name := range row.Measures {
				if _, ok := fd.measureIdx[name]; !ok {
					return fmt.Errorf("dw: batch row %d: fact %q has no measure %q", r, fact, name)
				}
			}
		}
	}

	// Write-ahead: one combined record for the whole transaction. The
	// apply below mirrors the validation exactly, so it cannot fail past
	// this point.
	if w.journal != nil {
		if err := w.journal.LogBatch(specs, fact, rows); err != nil {
			return fmt.Errorf("dw: journal: %w", err)
		}
	}
	for _, s := range specs {
		if _, err := w.addMemberLocked(s.Dim, s.Level, s.Name, s.Attrs, s.Parent); err != nil {
			// Unreachable while the validation above mirrors
			// addMemberLocked; surfaced loudly rather than swallowed.
			return fmt.Errorf("dw: applying validated batch spec: %w", err)
		}
	}
	for r, row := range rows {
		keys, vals, err := w.resolveRowLocked(fd, fact, row.Coords, row.Measures)
		if err != nil {
			return fmt.Errorf("dw: applying validated batch row %d: %w", r, err)
		}
		fd.appendRow(keys, vals, row.Provenance)
	}
	return nil
}

// resolveRowLocked resolves one fact row's member names to surrogate keys
// and its measure map to column order.
func (w *Warehouse) resolveRowLocked(fd *factData, fact string, coords map[string]string, measures map[string]float64) ([]int32, []float64, error) {
	keys := make([]int32, len(fd.roles))
	for i, ref := range fd.class.Dimensions {
		name, ok := coords[ref.Role]
		if !ok {
			return nil, nil, fmt.Errorf("dw: fact %q row missing role %q", fact, ref.Role)
		}
		dd := w.dims[ref.Dimension]
		base := dd.class.Base()
		key, ok := dd.levels[base.Name].byName[name]
		if !ok {
			return nil, nil, fmt.Errorf("dw: fact %q role %q: member %q not found at base level %q of %q",
				fact, ref.Role, name, base.Name, ref.Dimension)
		}
		keys[i] = int32(key)
	}
	vals := make([]float64, len(fd.measures))
	for name, v := range measures {
		i, ok := fd.measureIdx[name]
		if !ok {
			return nil, nil, fmt.Errorf("dw: fact %q has no measure %q", fact, name)
		}
		vals[i] = v
	}
	return keys, vals, nil
}

// FactCount returns the number of rows in a fact table.
func (w *Warehouse) FactCount(fact string) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if fd, ok := w.facts[fact]; ok {
		return fd.rows
	}
	return 0
}

// rollUpKey maps a base-level surrogate key of a dimension to the
// surrogate key of its ancestor at the target level. Returns NoParent when
// the chain is broken (missing parent links).
func (w *Warehouse) rollUpKeyLocked(dim string, baseKey int, level string) int {
	dd := w.dims[dim]
	path := dd.class.PathTo(level)
	if path == nil {
		return NoParent
	}
	key := baseKey
	for i := 0; i < len(path)-1; i++ {
		lt := dd.levels[path[i]]
		if key < 0 || key >= len(lt.members) {
			return NoParent
		}
		key = lt.members[key].Parent
	}
	if key < 0 {
		return NoParent
	}
	return key
}

// memberNameLocked resolves a surrogate key at a level to its name.
func (w *Warehouse) memberNameLocked(dim, level string, key int) string {
	lt := w.dims[dim].levels[level]
	if key < 0 || key >= len(lt.members) {
		return ""
	}
	return lt.members[key].Name
}
