// Package bi implements the Business Intelligence layer on top of the
// enriched warehouse: the analysis the paper motivates the whole
// integration with — "the analysis of the range of temperatures that
// increase the last minute flights to a city, in order to adjust the
// prices of these tickets". It joins the Last Minute Sales fact with the
// QA-fed Weather fact on (city, day), bins days by temperature, computes
// the sales-temperature correlation and derives pricing recommendations.
package bi

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dwqa/internal/dw"
)

// Point is one joined observation: a (destination city, day) pair with its
// ticket demand and the temperature the warehouse learned from the web.
type Point struct {
	City    string
	Day     string // Date-dimension member, "2004-01-31"
	Tickets int
	Revenue float64
	TempC   float64
}

// JoinSpec names the warehouse objects to join.
type JoinSpec struct {
	SalesFact   string // fact with Price measure, e.g. "LastMinuteSales"
	DestRole    string // role of the destination airport, e.g. "Destination"
	SalesDate   string // role of the sales date, e.g. "Date"
	WeatherFact string // fact with TempC measure, e.g. "Weather"
	WeatherCity string // role of the weather city, e.g. "City"
	WeatherDate string // role of the weather date, e.g. "Date"
}

// DefaultJoinSpec matches the Figure 1 scenario schema.
func DefaultJoinSpec() JoinSpec {
	return JoinSpec{
		SalesFact: "LastMinuteSales", DestRole: "Destination", SalesDate: "Date",
		WeatherFact: "Weather", WeatherCity: "City", WeatherDate: "Date",
	}
}

// Join executes the two OLAP queries and merges them on (city, day). Only
// pairs present on both sides survive — sales to cities the QA system
// found no weather for are not analysable, which is exactly the gap the
// integration fills.
func Join(wh *dw.Warehouse, spec JoinSpec) ([]Point, error) {
	sales, err := wh.Execute(dw.Query{
		Fact: spec.SalesFact, Measure: "Price", Agg: dw.Sum,
		GroupBy: []dw.LevelSel{
			{Role: spec.DestRole, Level: "City"},
			{Role: spec.SalesDate, Level: "Day"},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("bi: sales query: %w", err)
	}
	weather, err := wh.Execute(dw.Query{
		Fact: spec.WeatherFact, Measure: "TempC", Agg: dw.Avg,
		GroupBy: []dw.LevelSel{
			{Role: spec.WeatherCity, Level: "City"},
			{Role: spec.WeatherDate, Level: "Day"},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("bi: weather query: %w", err)
	}
	type key struct{ city, day string }
	temp := make(map[key]float64, len(weather.Rows))
	for _, r := range weather.Rows {
		temp[key{r.Groups[0], r.Groups[1]}] = r.Value
	}
	var out []Point
	for _, r := range sales.Rows {
		k := key{r.Groups[0], r.Groups[1]}
		t, ok := temp[k]
		if !ok {
			continue
		}
		out = append(out, Point{
			City: k.city, Day: k.day,
			Tickets: r.Count, Revenue: r.Value, TempC: t,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].City != out[j].City {
			return out[i].City < out[j].City
		}
		return out[i].Day < out[j].Day
	})
	return out, nil
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// series. It returns 0 for degenerate inputs.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// BinStat aggregates the joined observations falling into one temperature
// range.
type BinStat struct {
	Lo, Hi         float64 // [Lo, Hi)
	Days           int
	Tickets        int
	TicketsPerDay  float64
	AvgTicketPrice float64
}

// Label renders the range, e.g. "[10,15)ºC".
func (b BinStat) Label() string { return fmt.Sprintf("[%g,%g)ºC", b.Lo, b.Hi) }

// BinByTemperature groups points into fixed-width temperature bins.
func BinByTemperature(points []Point, width float64) []BinStat {
	if width <= 0 || len(points) == 0 {
		return nil
	}
	acc := map[int]*BinStat{}
	for _, p := range points {
		idx := int(math.Floor(p.TempC / width))
		b, ok := acc[idx]
		if !ok {
			b = &BinStat{Lo: float64(idx) * width, Hi: float64(idx+1) * width}
			acc[idx] = b
		}
		b.Days++
		b.Tickets += p.Tickets
		b.AvgTicketPrice += p.Revenue
	}
	idxs := make([]int, 0, len(acc))
	for i := range acc {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]BinStat, 0, len(idxs))
	for _, i := range idxs {
		b := acc[i]
		if b.Tickets > 0 {
			b.AvgTicketPrice /= float64(b.Tickets)
		}
		b.TicketsPerDay = float64(b.Tickets) / float64(b.Days)
		out = append(out, *b)
	}
	return out
}

// Report is the output of the sales×weather analysis.
type Report struct {
	Points      []Point
	Correlation float64
	Bins        []BinStat
	// BestBin is the temperature range with the highest demand per day
	// (among bins covering at least MinDays days).
	BestBin *BinStat
	// Recommendations are pricing actions per the scenario's goal
	// ("prices of last minute tickets could be adjusted to maximize
	// benefits").
	Recommendations []string
}

// Options tunes Analyze.
type Options struct {
	BinWidth float64 // default 5ºC
	MinDays  int     // minimum days for a bin to qualify as best (default 5)
}

// Analyze joins, correlates, bins and recommends.
func Analyze(wh *dw.Warehouse, spec JoinSpec, opt Options) (*Report, error) {
	if opt.BinWidth <= 0 {
		opt.BinWidth = 5
	}
	if opt.MinDays <= 0 {
		opt.MinDays = 5
	}
	points, err := Join(wh, spec)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("bi: no joinable (city, day) observations — has Step 5 fed the warehouse?")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.TempC
		ys[i] = float64(p.Tickets)
	}
	rep := &Report{
		Points:      points,
		Correlation: Pearson(xs, ys),
		Bins:        BinByTemperature(points, opt.BinWidth),
	}
	for i := range rep.Bins {
		b := &rep.Bins[i]
		if b.Days >= opt.MinDays && (rep.BestBin == nil || b.TicketsPerDay > rep.BestBin.TicketsPerDay) {
			rep.BestBin = b
		}
	}
	if rep.BestBin != nil {
		rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
			"demand peaks at %.1f tickets/day when the destination high is in %s: raise last-minute prices there",
			rep.BestBin.TicketsPerDay, rep.BestBin.Label()))
	}
	if rep.Correlation > 0.3 {
		rep.Recommendations = append(rep.Recommendations,
			fmt.Sprintf("last-minute demand rises with destination temperature (r=%.2f): price warm-weather routes dynamically", rep.Correlation))
	} else if rep.Correlation < -0.3 {
		rep.Recommendations = append(rep.Recommendations,
			fmt.Sprintf("last-minute demand falls with destination temperature (r=%.2f): discount warm-weather routes", rep.Correlation))
	}
	return rep, nil
}

// Format renders the report as text (the BI dashboard of the scenario).
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sales × Weather analysis (%d observations)\n", len(r.Points))
	fmt.Fprintf(&b, "Pearson correlation(tickets, tempC) = %.3f\n", r.Correlation)
	fmt.Fprintf(&b, "%-12s %6s %9s %13s %10s\n", "range", "days", "tickets", "tickets/day", "avg price")
	for _, bin := range r.Bins {
		fmt.Fprintf(&b, "%-12s %6d %9d %13.2f %10.2f\n",
			bin.Label(), bin.Days, bin.Tickets, bin.TicketsPerDay, bin.AvgTicketPrice)
	}
	for _, rec := range r.Recommendations {
		fmt.Fprintf(&b, "=> %s\n", rec)
	}
	return b.String()
}
