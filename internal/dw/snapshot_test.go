package dw

import (
	"fmt"
	"reflect"
	"testing"

	"dwqa/internal/mdm"
)

// snapTestSchema is a small two-dimension star for the snapshot tests.
func snapTestSchema() *mdm.Schema {
	city := &mdm.DimensionClass{
		Name: "City",
		Levels: []*mdm.Level{
			{Name: "City", Descriptor: "Name", RollsUpTo: "Country"},
			{Name: "Country", Descriptor: "Name"},
		},
	}
	date := &mdm.DimensionClass{
		Name: "Date",
		Levels: []*mdm.Level{
			{Name: "Day", Descriptor: "Date", RollsUpTo: "Month"},
			{Name: "Month", Descriptor: "Name"},
		},
	}
	weather := &mdm.FactClass{
		Name:     "Weather",
		Measures: []mdm.Measure{{Name: "TempC", Type: mdm.TypeFloat}},
		Dimensions: []mdm.DimensionRef{
			{Role: "City", Dimension: "City"},
			{Role: "Date", Dimension: "Date"},
		},
	}
	return mdm.NewSchema("snap").AddDimension(city).AddDimension(date).AddFact(weather)
}

// populateSnapTest loads a deterministic little warehouse.
func populateSnapTest(t *testing.T, w *Warehouse) {
	t.Helper()
	specs := []MemberSpec{
		{Dim: "City", Level: "Country", Name: "Spain"},
		{Dim: "City", Level: "City", Name: "Barcelona", Parent: "Spain", Attrs: map[string]string{"IATA": "BCN"}},
		{Dim: "City", Level: "City", Name: "Madrid", Parent: "Spain"},
		{Dim: "Date", Level: "Month", Name: "2004-01"},
		{Dim: "Date", Level: "Day", Name: "2004-01-01", Parent: "2004-01"},
		{Dim: "Date", Level: "Day", Name: "2004-01-02", Parent: "2004-01"},
	}
	if err := w.AddMembers(specs); err != nil {
		t.Fatal(err)
	}
	rows := []FactRow{
		{Coords: map[string]string{"City": "Barcelona", "Date": "2004-01-01"}, Measures: map[string]float64{"TempC": 10.5}, Provenance: "http://a"},
		{Coords: map[string]string{"City": "Barcelona", "Date": "2004-01-02"}, Measures: map[string]float64{"TempC": 11}, Provenance: "http://a"},
		{Coords: map[string]string{"City": "Madrid", "Date": "2004-01-01"}, Measures: map[string]float64{"TempC": 4}},
	}
	if err := w.AddFactRows("Weather", rows); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	populateSnapTest(t, src)

	snap := src.Export()
	dst, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(snap); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(dst.Export(), snap) {
		t.Fatal("re-export after import diverges from the original snapshot")
	}
	srcMembers, srcRows := src.Counts()
	dstMembers, dstRows := dst.Counts()
	if srcMembers != dstMembers || srcRows != dstRows {
		t.Fatalf("counts diverge: src %d/%d, dst %d/%d", srcMembers, srcRows, dstMembers, dstRows)
	}
	// Surrogate keys, parents and attributes survive.
	key, err := dst.MemberKey("City", "City", "Barcelona")
	if err != nil {
		t.Fatal(err)
	}
	m, err := dst.Member("City", "City", key)
	if err != nil {
		t.Fatal(err)
	}
	if m.Attrs["IATA"] != "BCN" {
		t.Fatalf("attrs lost: %v", m.Attrs)
	}
	if parent, _ := dst.ParentName("City", "City", "Barcelona"); parent != "Spain" {
		t.Fatalf("parent lost: %q", parent)
	}
	// Provenance sidecar survives, including rows without provenance.
	for row, want := range map[int]string{0: "http://a", 1: "http://a", 2: ""} {
		got, err := dst.FactProvenance("Weather", row)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("row %d provenance = %q, want %q", row, got, want)
		}
	}
	// Queries over the imported warehouse keep working (byName and
	// roll-up state restored).
	res, err := dst.Execute(Query{
		Fact:    "Weather",
		Measure: "TempC",
		Agg:     Avg,
		GroupBy: []LevelSel{{Role: "City", Level: "City"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("query over imported warehouse: %d groups, want 2", len(res.Rows))
	}
}

func TestImportRejectsShapeMismatches(t *testing.T) {
	src, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	populateSnapTest(t, src)
	base := src.Export()

	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"unknown dimension", func(s *Snapshot) { s.Dims[0].Dim = "Nope" }},
		{"unknown level", func(s *Snapshot) { s.Dims[0].Levels[0].Level = "Nope" }},
		{"unknown fact", func(s *Snapshot) { s.Facts[0].Fact = "Nope" }},
		{"sparse keys", func(s *Snapshot) { s.Dims[0].Levels[0].Members[0].Key = 7 }},
		{"empty member name", func(s *Snapshot) { s.Dims[0].Levels[0].Members[0].Name = "" }},
		{"parent key out of range", func(s *Snapshot) { s.Dims[0].Levels[0].Members[0].Parent = 42 }},
		{"parent on hierarchy top", func(s *Snapshot) { s.Dims[0].Levels[1].Members[0].Parent = 0 }},
		{"fact coordinate out of range", func(s *Snapshot) { s.Facts[0].Coords[0][0] = 99 }},
		{"missing coordinate column", func(s *Snapshot) { s.Facts[0].Coords = s.Facts[0].Coords[:1] }},
		{"ragged coordinate column", func(s *Snapshot) { s.Facts[0].Coords[0] = s.Facts[0].Coords[0][:1] }},
		{"ragged measure column", func(s *Snapshot) { s.Facts[0].Measures[0] = s.Facts[0].Measures[0][:1] }},
		{"provenance out of range", func(s *Snapshot) { s.Facts[0].ProvRows[0] = 99 }},
		{"provenance rows/vals mismatch", func(s *Snapshot) { s.Facts[0].ProvVals = s.Facts[0].ProvVals[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := src.Export() // fresh deep copy to mutate
			tc.mutate(snap)
			dst, err := New(snapTestSchema())
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Import(snap); err == nil {
				t.Fatal("corrupt snapshot imported without error")
			}
			// Never half-load: the target must still be empty.
			if members, rows := dst.Counts(); members != 0 || rows != 0 {
				t.Fatalf("failed import left state behind: %d members, %d rows", members, rows)
			}
		})
	}
	// The unmutated snapshot still imports (the cases above did not
	// corrupt the source).
	dst, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(base); err != nil {
		t.Fatal(err)
	}
}

// TestAddMembersIdempotent pins the warehouse-level idempotency WAL
// replay relies on: re-applying a member batch with duplicate names
// leaves counts and keys unchanged.
func TestAddMembersIdempotent(t *testing.T) {
	w, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	specs := []MemberSpec{
		{Dim: "City", Level: "Country", Name: "Spain"},
		{Dim: "City", Level: "City", Name: "Barcelona", Parent: "Spain"},
		{Dim: "City", Level: "City", Name: "Barcelona", Parent: "Spain"}, // dup inside the batch
	}
	if err := w.AddMembers(specs); err != nil {
		t.Fatal(err)
	}
	key1, _ := w.MemberKey("City", "City", "Barcelona")
	if err := w.AddMembers(specs); err != nil { // whole batch re-applied
		t.Fatal(err)
	}
	key2, _ := w.MemberKey("City", "City", "Barcelona")
	if key1 != key2 {
		t.Fatalf("re-applied batch moved surrogate key %d → %d", key1, key2)
	}
	if n := w.MemberCount("City", "City"); n != 1 {
		t.Fatalf("re-applied batch duplicated members: %d", n)
	}
}

// TestScanFact checks the recovery accessor resolves coordinates back to
// member names with provenance.
func TestScanFact(t *testing.T) {
	w, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	populateSnapTest(t, w)
	var got []string
	err = w.ScanFact("Weather", []string{"City", "Date"}, func(row int, names []string, prov string) error {
		got = append(got, fmt.Sprintf("%d:%s|%s|%s", row, names[0], names[1], prov))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"0:Barcelona|2004-01-01|http://a",
		"1:Barcelona|2004-01-02|http://a",
		"2:Madrid|2004-01-01|",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ScanFact rows:\n got %v\nwant %v", got, want)
	}
	if err := w.ScanFact("Weather", []string{"Nope"}, nil); err == nil {
		t.Fatal("unknown role accepted")
	}
	if err := w.ScanFact("Nope", nil, nil); err == nil {
		t.Fatal("unknown fact accepted")
	}
}

// journalRecorder captures journal calls for the hook tests.
type journalRecorder struct {
	members  [][]MemberSpec
	factRows []int
	batches  [][2]int // (specs, rows) sizes of each LogBatch call
	fail     bool
}

func (j *journalRecorder) LogMembers(specs []MemberSpec) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.members = append(j.members, specs)
	return nil
}

func (j *journalRecorder) LogFactRows(fact string, rows []FactRow) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.factRows = append(j.factRows, len(rows))
	return nil
}

func (j *journalRecorder) LogBatch(specs []MemberSpec, fact string, rows []FactRow) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.batches = append(j.batches, [2]int{len(specs), len(rows)})
	return nil
}

func TestJournalHooks(t *testing.T) {
	w, err := New(snapTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	rec := &journalRecorder{}
	w.SetJournal(rec)
	populateSnapTest(t, w)
	if len(rec.members) != 1 || len(rec.members[0]) != 6 {
		t.Fatalf("member batches logged: %v", rec.members)
	}
	if len(rec.factRows) != 1 || rec.factRows[0] != 3 {
		t.Fatalf("fact batches logged: %v", rec.factRows)
	}

	// A failing batch logs nothing: the bad spec aborts before the
	// journal call.
	bad := []MemberSpec{
		{Dim: "City", Level: "City", Name: "Valencia", Parent: "Nowhere"},
	}
	if err := w.AddMembers(bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	if len(rec.members) != 1 {
		t.Fatalf("failed batch reached the journal: %v", rec.members)
	}
	// An invalid fact batch is rejected before the journal call too.
	badRows := []FactRow{{Coords: map[string]string{"City": "Nowhere", "Date": "2004-01-01"}}}
	if err := w.AddFactRows("Weather", badRows); err == nil {
		t.Fatal("bad fact batch accepted")
	}
	if len(rec.factRows) != 1 {
		t.Fatalf("failed fact batch reached the journal: %v", rec.factRows)
	}

	// Journal failure surfaces to the caller.
	rec.fail = true
	if err := w.AddFactRows("Weather", []FactRow{
		{Coords: map[string]string{"City": "Barcelona", "Date": "2004-01-01"}, Measures: map[string]float64{"TempC": 1}},
	}); err == nil {
		t.Fatal("journal failure swallowed")
	}
}
