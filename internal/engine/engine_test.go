package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/etl"
	"dwqa/internal/qa"
)

// newPipeline builds a scenario pipeline with steps 1-4 run (the point
// from which both serving and feeding are possible).
func newPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// askWorkload is a serving-shaped question mix: every scenario question
// plus repeats (user traffic asks the same things) plus a failing entry.
func askWorkload(p *core.Pipeline) []string {
	qs := p.WeatherQuestions()
	qs = append(qs, qs...) // exact repeats
	qs = append(qs, "   ") // analysis error slot
	qs = append(qs, "What is the weather like in January of 2004 in El Prat?")
	return qs
}

// render flattens one result for byte-level comparison.
func render(res *qa.Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return res.Trace().Format()
}

func TestAskAllMatchesSequentialAsk(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.Step5FeedWarehouse(p.WeatherQuestions()); err != nil {
		t.Fatal(err)
	}
	questions := askWorkload(p)

	// The sequential oracle: one Ask per question, in order.
	want := make([]string, len(questions))
	for i, q := range questions {
		res, err := p.Ask(q)
		want[i] = render(res, err)
	}

	results, err := p.AskAll(questions)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(questions) {
		t.Fatalf("got %d results for %d questions", len(results), len(questions))
	}
	for i, r := range results {
		if r.Question != questions[i] {
			t.Errorf("slot %d holds question %q, want %q", i, r.Question, questions[i])
		}
		if got := render(r.Result, r.Err); got != want[i] {
			t.Errorf("slot %d (%q):\n  batch      = %q\n  sequential = %q", i, questions[i], got, want[i])
		}
	}

	// A second pass must be served from the cache with identical bytes.
	again, err := p.AskAll(questions)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if got := render(r.Result, r.Err); got != want[i] {
			t.Errorf("cached slot %d diverged from sequential result", i)
		}
		if r.Err == nil && !r.Cached {
			t.Errorf("slot %d (%q) should have been served from the cache", i, r.Question)
		}
	}
}

func TestAskAllCoalescesDuplicates(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	q := "What is the weather like in January of 2004 in El Prat?"
	batch := []string{q, q, q + "  ", q}
	results := eng.AskAll(context.Background(), batch)
	computed := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.Cached {
			computed++
		}
	}
	if computed != 1 {
		t.Errorf("%d slots computed, want 1 (the rest coalesced)", computed)
	}
	st := eng.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (one unique question)", st.CacheMisses)
	}
}

// TestNormalizedVariantsShareAnswer pins the cache-key contract: surface
// variants that normalise identically (extra whitespace, missing question
// mark) coalesce onto one computation and return the same answer, while a
// differently-cased variant analyses on its own (case drives proper-noun
// tagging).
func TestNormalizedVariantsShareAnswer(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	canonical := "What is the weather like in January of 2004 in El Prat?"
	variant := "What is   the weather like in January of 2004 in El Prat"
	results := eng.AskAll(context.Background(), []string{canonical, variant})
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatal(results[0].Err, results[1].Err)
	}
	if !results[1].Cached {
		t.Error("whitespace variant should coalesce onto the canonical question")
	}
	if results[0].Result != results[1].Result {
		t.Error("coalesced slots should share the computed result")
	}

	lower := "what is the weather like in january of 2004 in el prat?"
	lr := eng.Ask(context.Background(), lower)
	if lr.Err == nil && lr.Cached {
		t.Error("case-variant question must not share the cache entry")
	}
}

func TestHarvestAllMatchesSequentialLoop(t *testing.T) {
	// Pipeline A feeds through the engine's parallel harvest + batch load.
	pa := newPipeline(t)
	questions := pa.WeatherQuestions()
	stepResults, err := pa.Step5FeedWarehouse(questions)
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline B replicates the pre-engine sequential loop: harvest one
	// question at a time, load row-at-a-time through Load.
	pb := newPipeline(t)
	harvester, err := pb.NewHarvester()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := etl.NewLoader(pb.Ontology, pb.Warehouse, "Weather", "City", "Date")
	if err != nil {
		t.Fatal(err)
	}
	var wantLoaded []int
	totalLoaded := 0
	for _, q := range questions {
		answers, _, err := harvester.Harvest(q)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := loader.Load(answers)
		if err != nil {
			t.Fatal(err)
		}
		wantLoaded = append(wantLoaded, rep.Loaded)
		totalLoaded += rep.Loaded
	}

	if len(stepResults) != len(wantLoaded) {
		t.Fatalf("%d step results, want %d", len(stepResults), len(wantLoaded))
	}
	for i, sr := range stepResults {
		if sr.Answers != wantLoaded[i] {
			t.Errorf("question %q loaded %d records via engine, %d sequentially",
				sr.Question, sr.Answers, wantLoaded[i])
		}
	}
	if got, want := pa.Warehouse.FactCount("Weather"), pb.Warehouse.FactCount("Weather"); got != want {
		t.Errorf("engine-fed warehouse has %d weather rows, sequential has %d", got, want)
	}
	if pa.LoadReport.Loaded != totalLoaded {
		t.Errorf("LoadReport.Loaded = %d, want %d", pa.LoadReport.Loaded, totalLoaded)
	}
}

func TestHarvestBumpsGenerationAndSparesFactoidEntries(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	q := "What is the weather like in January of 2004 in El Prat?"
	if r := eng.Ask(context.Background(), q); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Ask(context.Background(), q); !r.Cached {
		t.Fatal("second ask should hit the cache")
	}
	gen := eng.Generation()
	if _, _, err := eng.HarvestAll(context.Background(), nil); err != nil { // nil = default workload
		t.Fatal(err)
	}
	if eng.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", eng.Generation(), gen+1)
	}
	// Selective invalidation: a warehouse feed does not touch the IR
	// index, so the cached factoid answer (which reads only the index)
	// survives the feed. This is the hit-rate win over the old
	// flush-everything behaviour; analytic entries over the fed fact DO
	// die (TestAnalyticAnswersInvalidatedByFeed).
	if r := eng.Ask(context.Background(), q); !r.Cached {
		t.Error("factoid entry should survive a warehouse feed (index untouched)")
	}
	// The explicit full flush still clears everything.
	eng.InvalidateCache()
	if r := eng.Ask(context.Background(), q); r.Cached {
		t.Error("InvalidateCache must drop factoid entries")
	}
}

func TestHarvestAllIdempotent(t *testing.T) {
	p := newPipeline(t)
	eng, err := p.Engine()
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := eng.HarvestAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Loaded == 0 {
		t.Fatal("first feed loaded nothing")
	}
	rows := p.Warehouse.FactCount("Weather")
	_, second, err := eng.HarvestAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every record of the repeat feed is a duplicate: the first feed's
	// loads plus its own in-batch duplicates all skip.
	if second.Loaded != 0 || second.Skipped != second.Normalized {
		t.Errorf("second feed: %d loaded, %d/%d skipped; want 0 loaded, all skipped",
			second.Loaded, second.Skipped, second.Normalized)
	}
	if second.Normalized != first.Normalized {
		t.Errorf("normalized counts differ across identical feeds: %d vs %d",
			second.Normalized, first.Normalized)
	}
	if got := p.Warehouse.FactCount("Weather"); got != rows {
		t.Errorf("weather rows grew from %d to %d on a repeated feed", rows, got)
	}
}

// TestConcurrentAskWhileFeeding is the serving scenario under the race
// detector: many goroutines asking (single and batched) while Step 5
// feeds the warehouse — plus concurrent Step 4 re-tuning of patterns.
func TestConcurrentAskWhileFeeding(t *testing.T) {
	p := newPipeline(t)
	questions := p.WeatherQuestions()
	q := "What is the weather like in January of 2004 in El Prat?"

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := p.Ask(q); err != nil {
					errs <- fmt.Errorf("Ask: %w", err)
					return
				}
				if _, err := p.AskAll(questions[:3]); err != nil {
					errs <- fmt.Errorf("AskAll: %w", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Step5FeedWarehouse(questions); err != nil {
				errs <- fmt.Errorf("Step5: %w", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Step 4 tuning may interleave with serving (copy-on-write set).
		p.QA.TunePatterns(qa.WeatherPatterns()...)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The system still answers correctly after the storm.
	res, err := p.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Location != "Barcelona" {
		t.Fatalf("best after concurrent feed = %+v", res.Best)
	}
}

func TestEngineWithoutLoaderRefusesHarvest(t *testing.T) {
	p := newPipeline(t)
	eng, err := engine.New(engine.Config{}, p.QA, nil, nil, p.Index)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.HarvestAll(context.Background(), []string{"What is the weather like in January of 2004 in El Prat?"}); err == nil {
		t.Fatal("expected an error from a loader-less engine")
	}
}
