package webcorpus

import (
	"fmt"

	"dwqa/internal/ir"
)

// DistractorPages returns pages carrying the paper's ambiguity landscape
// plus generic noise. They contain the entity names of the scenario in
// their *non-airport* senses, so a QA system without the enriched
// ontology confuses them, and numbers/dates that bait naive extractors.
func DistractorPages() []Page {
	mk := func(url, title, body string) Page {
		html := fmt.Sprintf("<html><head><title>%s</title></head><body><h1>%s</h1>\n%s</body></html>",
			title, title, body)
		return Page{URL: url, Title: title, HTML: html}
	}
	return []Page{
		mk("http://cinema.example/john-wayne",
			"John Wayne, American film actor",
			"<p>John Wayne was an American film actor born in 1907. The actor starred in 142 westerns "+
				"and won an Academy Award in 1970. Critics measured his influence in decades, not years. "+
				"In January of 1971 he gave 3 interviews about the weather in Hollywood studios.</p>"),
		mk("http://music.example/el-prat",
			"El Prat - Spanish musical group",
			"<p>El Prat is a Spanish musical group founded in 1998. The band recorded 46 songs and played "+
				"8 concerts in Barcelona last January. Their album reached number 12 in 2004 charts. "+
				"Fans say the group's temperature on stage is always rising.</p>"),
		mk("http://politics.example/la-guardia",
			"Fiorello La Guardia biography",
			"<p>Fiorello La Guardia was the mayor of New York. La Guardia served 3 terms between 1934 and 1945. "+
				"The politician reformed 12 city departments. On the 12th of May, 1937 he opened a new bridge.</p>"),
		mk("http://news.example/financial-crisis",
			"Financial crisis retrospective",
			"<p>The financial crisis shook New York during the first quarter of 1998. Analysts published 31 reports. "+
				"Inflation reached 8 percent in January of 1998 while markets fell 46.4 points.</p>"),
		mk("http://travel.example/last-minute-tips",
			"Last minute flight tips",
			"<p>Travelers can buy last minute tickets at the airport. Prices drop 40 percent on Monday. "+
				"A flight from Madrid to Barcelona takes 1 hour. Airlines sell tickets at the gate.</p>"),
		mk("http://astronomy.example/sirius",
			"Sirius, the brightest star",
			"<p>All stars shine but none do it like Sirius, the brightest star in the night sky. "+
				"Sirius is visible in the universe from both hemispheres. Astronomers measured its temperature "+
				"at 9940 degrees kelvin in 2003.</p>"),
		mk("http://history.example/gulf-war",
			"The Gulf War of 1990",
			"<p>Iraq invaded Kuwait in August of 1990. The invasion started the Gulf War. "+
				"Many countries joined a coalition in 1991. The conflict reshaped politics in the region.</p>"),
	}
}

// Config controls corpus generation.
type Config struct {
	Cities []string // cities with weather pages
	Year   int
	Months []int // months with coverage
	Seed   int64
	// TableShare in [0,1]: fraction of weather pages rendered as Figure 5
	// style tables instead of Figure 4 prose. The generator alternates
	// deterministically to honour the share.
	TableShare float64
	// IncludeDistractors adds the ambiguity/noise pages.
	IncludeDistractors bool
}

// DefaultConfig is the Last Minute Sales evaluation corpus: the scenario's
// destination cities across January-March 2004, prose and table pages,
// with distractors.
func DefaultConfig() Config {
	return Config{
		Cities:             []string{"Barcelona", "Madrid", "New York", "Costa Mesa", "Seville", "Bilbao"},
		Year:               2004,
		Months:             []int{1, 2, 3},
		Seed:               42,
		TableShare:         0.3,
		IncludeDistractors: true,
	}
}

// Corpus is a generated page collection with gold truth.
type Corpus struct {
	Pages []Page
	// Weather indexes the gold series: city → month → days.
	Weather map[string]map[int][]WeatherDay
}

// Build generates the deterministic corpus for a configuration.
func Build(cfg Config) *Corpus {
	c := &Corpus{Weather: make(map[string]map[int][]WeatherDay)}
	tableBudget := 0.0
	for _, city := range cfg.Cities {
		c.Weather[city] = make(map[int][]WeatherDay)
		for _, month := range cfg.Months {
			days := WeatherSeries(city, cfg.Year, month, cfg.Seed)
			c.Weather[city][month] = days
			tableBudget += cfg.TableShare
			if tableBudget >= 1.0 {
				tableBudget -= 1.0
				c.Pages = append(c.Pages, TablePage(days))
			} else {
				c.Pages = append(c.Pages, ProsePage(days))
			}
		}
	}
	if cfg.IncludeDistractors {
		c.Pages = append(c.Pages, DistractorPages()...)
	}
	return c
}

// GoldHigh returns the gold daily-high temperature for a city/date, and
// whether the corpus covers it.
func (c *Corpus) GoldHigh(city string, year, month, day int) (float64, bool) {
	months, ok := c.Weather[city]
	if !ok {
		return 0, false
	}
	for _, d := range months[month] {
		if d.Year == year && d.Day == day {
			return float64(d.HighC), true
		}
	}
	return 0, false
}

// Documents converts the corpus to IR documents using the chosen
// extractor. tableAware selects the future-work table pre-processing.
func (c *Corpus) Documents(tableAware bool) []ir.Document {
	docs := make([]ir.Document, 0, len(c.Pages))
	for _, p := range c.Pages {
		var text string
		if tableAware {
			text = ExtractTextTableAware(p.HTML)
		} else {
			text = ExtractText(p.HTML)
		}
		docs = append(docs, ir.Document{URL: p.URL, Text: text})
	}
	return docs
}

// Page returns the page with the given URL, or nil.
func (c *Corpus) Page(url string) *Page {
	for i := range c.Pages {
		if c.Pages[i].URL == url {
			return &c.Pages[i]
		}
	}
	return nil
}
