package sbparser

import (
	"testing"

	"dwqa/internal/nlp"
)

// FuzzParseSB asserts the shallow parser's invariants on arbitrary text:
// parsing, rendering and date extraction never panic, every produced
// block carries at least one token (a PP's preposition, an NP/VBC core),
// and extracted dates stay within calendar-plausible ranges.
func FuzzParseSB(f *testing.F) {
	for _, s := range []string{
		"What is the weather like in January of 2004 in El Prat?",
		"Which country did Iraq invade in 1990?",
		"What is Sirius?",
		"Temperatures reached 8º C in Barcelona on Monday, January 31, 2004.",
		"the 12th of May",
		"High (ºC) 8 Low -2",
		"In 2004. Of May. 31.",
		"January February 2004 2005 31 31",
		"to go to the airport to 5",
		"",
		"º",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		for _, sent := range nlp.SplitSentences(text) {
			blocks := Parse(sent)
			var checkBlock func(b Block)
			checkBlock = func(b Block) {
				if len(b.Tokens) == 0 && len(b.Children) == 0 {
					t.Fatalf("block %v has neither tokens nor children", b.Type)
				}
				switch b.Type {
				case NP, VBC:
					if len(b.Tokens) == 0 {
						t.Fatalf("%v block without tokens", b.Type)
					}
				case PP:
					if len(b.Tokens) == 0 {
						t.Fatal("PP without its preposition token")
					}
				default:
					t.Fatalf("unknown block type %q", b.Type)
				}
				_ = b.Text()
				_ = b.Lemmas()
				_ = b.ContentLemmas()
				_ = b.HeadNoun()
				bb := b
				_ = (&bb).InnerNP()
				for _, c := range b.Children {
					checkBlock(c)
				}
			}
			for _, b := range blocks {
				checkBlock(b)
			}
			_ = Render(blocks)
			for _, d := range ExtractDates(blocks) {
				if d.IsZero() {
					t.Fatal("ExtractDates returned a zero DateRef")
				}
				if d.Month < 0 || d.Month > 12 || d.Day < 0 || d.Day > 31 {
					t.Fatalf("implausible date %+v", d)
				}
				if d.Year != 0 && (d.Year < 1500 || d.Year > 2200) {
					t.Fatalf("implausible year %+v", d)
				}
			}
		}
		// The whole-text entry point must agree in sentence count.
		if got, want := len(ParseText(text)), len(nlp.SplitSentences(text)); got != want {
			t.Fatalf("ParseText produced %d sentence parses, want %d", got, want)
		}
	})
}
