package nlp

import (
	"strings"
	"sync"
)

// Process-wide string intern pool for lower-cased word forms and lemmas.
//
// An analysed corpus repeats a small vocabulary millions of times; without
// interning, every capitalised occurrence ("January" → "january") lowers
// into a fresh heap string that then lives as long as the document's
// tokens do. Interning collapses each distinct form to one canonical
// instance, so long-lived token storage (and the IR term dictionary,
// which interns the very same lemma instances it receives from Analyze)
// shares storage instead of duplicating it. The pool is vocabulary-bound,
// the same growth law as the term dictionary itself.

var (
	internMu   sync.RWMutex
	internPool = make(map[string]string)
)

// Intern returns the canonical instance of s. The stored copy is cloned
// so the pool never pins a large backing array (tokenizer output slices
// document text).
func Intern(s string) string {
	internMu.RLock()
	c, ok := internPool[s]
	internMu.RUnlock()
	if ok {
		return c
	}
	internMu.Lock()
	defer internMu.Unlock()
	if c, ok := internPool[s]; ok {
		return c
	}
	c = strings.Clone(s)
	internPool[c] = c
	return c
}
