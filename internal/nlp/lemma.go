package nlp

import "strings"

// irregularLemmas maps irregular inflected forms to their lemma.
var irregularLemmas = map[string]string{
	// be / have / do
	"is": "be", "am": "be", "are": "be", "was": "be", "were": "be",
	"been": "be", "being": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	// frequent irregular verbs
	"went": "go", "gone": "go", "came": "come", "saw": "see", "seen": "see",
	"took": "take", "taken": "take", "got": "get", "gotten": "get",
	"made": "make", "said": "say", "sold": "sell", "bought": "buy",
	"flew": "fly", "flown": "fly", "shone": "shine", "fell": "fall",
	"rose": "rise", "met": "meet", "held": "hold", "left": "leave",
	"found": "find", "gave": "give", "given": "give", "knew": "know",
	"known": "know", "thought": "think", "brought": "bring",
	// irregular plurals
	"people": "person", "children": "child", "men": "man", "women": "woman",
	"feet": "foot", "teeth": "tooth", "mice": "mouse", "geese": "goose",
	"data": "datum", "criteria": "criterion", "indices": "index",
	// comparatives that the suffix stripper must not mangle
	"best": "good", "better": "good", "worst": "bad", "worse": "bad",
}

// Lemmatize returns the lemma (lower-cased base form) of a word given its
// tag. Proper nouns and numbers are lower-cased but otherwise unchanged,
// matching the paper's trace ("January NP january", "8 CD 8").
func Lemmatize(word string, tag Tag) string {
	return lemmatizeLower(Intern(strings.ToLower(word)), tag)
}

// lemmatizeLower is Lemmatize over an already lower-cased, interned form.
// Results are interned too, so every occurrence of a lemma across the
// whole corpus is one heap string — the storage the analysed sentences
// (and through them the IR term dictionary) retain.
func lemmatizeLower(lower string, tag Tag) string {
	if lemma, ok := irregularLemmas[lower]; ok {
		return lemma
	}
	switch tag {
	case TagCD:
		return Intern(stripOrdinal(lower))
	case TagNNS:
		return Intern(singularize(lower))
	case TagVBZ:
		return Intern(unverbThirdPerson(lower))
	case TagVBD, TagVBN:
		return Intern(strip("ed", lower))
	case TagVBG:
		return Intern(strip("ing", lower))
	default:
		return lower
	}
}

// stripOrdinal reduces ordinal numerals to their cardinal lemma ("14th" →
// "14") so question terms match document tokens.
func stripOrdinal(lower string) string {
	for _, suf := range [...]string{"st", "nd", "rd", "th"} {
		if trimmed, ok := strings.CutSuffix(lower, suf); ok && trimmed != "" {
			allDigits := true
			for i := 0; i < len(trimmed); i++ {
				if trimmed[i] < '0' || trimmed[i] > '9' {
					allDigits = false
					break
				}
			}
			if allDigits {
				return trimmed
			}
		}
	}
	return lower
}

// singularize applies English plural-stripping rules.
func singularize(lower string) string {
	switch {
	case strings.HasSuffix(lower, "ies") && len(lower) > 4:
		return lower[:len(lower)-3] + "y" // skies → sky, cities → city
	case strings.HasSuffix(lower, "ves") && len(lower) > 4:
		return lower[:len(lower)-3] + "f" // leaves → leaf (lossy but rare)
	case strings.HasSuffix(lower, "xes"), strings.HasSuffix(lower, "ses"),
		strings.HasSuffix(lower, "zes"), strings.HasSuffix(lower, "ches"),
		strings.HasSuffix(lower, "shes"):
		return lower[:len(lower)-2] // boxes → box, buses → bus
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") &&
		!strings.HasSuffix(lower, "us") && !strings.HasSuffix(lower, "is") &&
		len(lower) > 2:
		return lower[:len(lower)-1]
	default:
		return lower
	}
}

func unverbThirdPerson(lower string) string {
	switch {
	case strings.HasSuffix(lower, "ies") && len(lower) > 4:
		return lower[:len(lower)-3] + "y" // flies → fly
	case strings.HasSuffix(lower, "es") && len(lower) > 3 &&
		(strings.HasSuffix(lower, "ches") || strings.HasSuffix(lower, "shes") ||
			strings.HasSuffix(lower, "xes") || strings.HasSuffix(lower, "ses") ||
			strings.HasSuffix(lower, "zes") || strings.HasSuffix(lower, "oes")):
		return lower[:len(lower)-2] // goes → go, watches → watch
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") &&
		len(lower) > 2:
		return lower[:len(lower)-1]
	default:
		return lower
	}
}

// knownBases lists verb base forms consulted before the e-restoration
// heuristics: if the stripped stem (or stem+"e") is a known base it wins.
// Real lemmatisers are lexicon-first for exactly this ambiguity
// ("invaded"→invade but "recorded"→record).
var knownBases = map[string]bool{
	"invade": true, "arrive": true, "hope": true, "note": true,
	"close": true, "increase": true, "decrease": true, "use": true,
	"store": true, "live": true, "move": true, "change": true,
	"produce": true, "provide": true, "require": true, "create": true,
	"generate": true, "analyze": true, "compare": true, "define": true,
	"describe": true, "include": true, "propose": true, "retrieve": true,
	"record": true, "report": true, "visit": true, "open": true,
	"drop": true, "stop": true, "plan": true, "travel": true,
	"reach": true, "measure": true, "rain": true, "snow": true,
	"expect": true, "remain": true, "stay": true, "hover": true,
	"land": true, "board": true, "book": true, "depart": true,
	"schedule": true, "cancel": true, "delay": true, "promote": true,
}

// strip removes a verbal suffix, restoring a dropped final "e" when the
// remaining stem looks like it needs one (lexicon first, then CVC+e
// pattern heuristics).
func strip(suffix, lower string) string {
	if !strings.HasSuffix(lower, suffix) || len(lower) <= len(suffix)+1 {
		return lower
	}
	stem := lower[:len(lower)-len(suffix)]
	if knownBases[stem] {
		return stem
	}
	if knownBases[stem+"e"] {
		return stem + "e"
	}
	// Doubled final consonant from gemination: dropped → drop, stopped → stop.
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && isConsonant(stem[n-1]) &&
		stem[n-1] != 'l' && stem[n-1] != 's' {
		return stem[:n-1]
	}
	// Restore final "e": hoped → hope, arriving → arrive.
	if n >= 2 && isConsonant(stem[n-1]) && isVowelByte(stem[n-2]) &&
		!strings.HasSuffix(stem, "w") && !strings.HasSuffix(stem, "x") &&
		!strings.HasSuffix(stem, "y") {
		// Heuristic: restore e after soft endings commonly requiring it.
		switch stem[n-1] {
		case 'v', 'c', 'g', 'z', 'u':
			return stem + "e"
		}
	}
	return stem
}

func isConsonant(b byte) bool { return b >= 'a' && b <= 'z' && !isVowelByte(b) }

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
