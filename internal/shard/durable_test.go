package shard_test

import (
	"os"
	"path/filepath"
	"testing"

	"dwqa/internal/shard"
	"dwqa/internal/store"
)

// TestDetectShards: a cluster directory reports the shard count it was
// created with, a fresh or single-node directory reports 0, and a
// hand-edited layout with a numbering gap is an error rather than a
// count that would silently drop data.
func TestDetectShards(t *testing.T) {
	root := t.TempDir()

	n, err := shard.DetectShards(store.OS(), root)
	if err != nil || n != 0 {
		t.Fatalf("empty dir: got %d, %v; want 0, nil", n, err)
	}

	for i := 0; i < 3; i++ {
		if err := os.MkdirAll(shard.ShardDir(root, i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	n, err = shard.DetectShards(store.OS(), root)
	if err != nil || n != 3 {
		t.Fatalf("3-shard dir: got %d, %v; want 3, nil", n, err)
	}

	// Unrelated entries (a single-node snapshot, a stray file) are not
	// shard directories.
	if err := os.WriteFile(filepath.Join(root, "snapshot-000001.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err = shard.DetectShards(store.OS(), root)
	if err != nil || n != 3 {
		t.Fatalf("3-shard dir with stray file: got %d, %v; want 3, nil", n, err)
	}

	if err := os.RemoveAll(shard.ShardDir(root, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.DetectShards(store.OS(), root); err == nil {
		t.Fatal("gap in shard numbering: want an error, got nil")
	}
}
