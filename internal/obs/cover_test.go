package obs

import "testing"

func TestGaugeAddAndValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("dwqa_test_gauge", "A test gauge.")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
}

func TestStageStringOutOfRange(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if got := Stage(250).String(); got != "stage(250)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

func TestProcessRSS(t *testing.T) {
	// On Linux both must be readable and peak >= current; elsewhere both
	// return 0 ("unknown") and the invariant holds trivially.
	rss, peak := ProcessRSS(), ProcessPeakRSS()
	if rss > 0 && peak < rss {
		t.Fatalf("peak RSS %d < current RSS %d", peak, rss)
	}
}
