package engine_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dwqa/internal/engine"
	"dwqa/internal/obs"
)

// logCapture is a concurrency-safe Logf sink for access-log and
// slow-query assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (c *logCapture) logf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

func (c *logCapture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

func (c *logCapture) joined() string { return strings.Join(c.all(), "\n") }

// scrape fetches GET /metrics through the HTTP façade and returns the
// exposition body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	return rec.Body.String()
}

// TestMetricsExposition drives a real ask through the engine and checks
// that one /metrics scrape carries the whole serving story: stage
// latency histograms, the cache counters, the resilience counters and
// the live gauges — the same cells Stats()/healthz reads.
func TestMetricsExposition(t *testing.T) {
	p, eng := newEngine(t, engine.Config{AskTimeout: -1})
	srv := engine.NewServer(eng)
	q := p.WeatherQuestions()[0]

	if r := eng.Ask(context.Background(), q); r.Err != nil {
		t.Fatalf("ask: %v", r.Err)
	}
	if r := eng.Ask(context.Background(), q); r.Err != nil || !r.Cached {
		t.Fatalf("second ask = (err=%v, cached=%v), want cache hit", r.Err, r.Cached)
	}

	body := scrape(t, srv)
	for _, want := range []string{
		// One miss (first ask) and one hit (second) on the shared cells.
		"dwqa_cache_hits_total 1\n",
		"dwqa_cache_misses_total 1\n",
		// The factoid path stamped its stages exactly once — the cache
		// hit must not re-observe them.
		`dwqa_stage_duration_seconds_count{stage="nlp_analyse"} 1`,
		`dwqa_stage_duration_seconds_count{stage="ir_search"} 1`,
		`dwqa_stage_duration_seconds_count{stage="qa_extract"} 1`,
		// Both asks looked the cache up.
		`dwqa_stage_duration_seconds_count{stage="cache_lookup"} 2`,
		// Untouched stages exist with zero observations.
		`dwqa_stage_duration_seconds_count{stage="wal_append"} 0`,
		// Resilience counters, one source with /healthz.
		"dwqa_shed_total 0\n",
		"dwqa_timeouts_total 0\n",
		"dwqa_panics_total 0\n",
		"dwqa_wal_errors_total 0\n",
		// Live gauges read the engine at scrape time.
		"dwqa_cache_entries 1\n",
		"dwqa_inflight 0\n",
		"dwqa_degraded 0\n",
		// The fed corpus is visible.
		"# TYPE dwqa_documents gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestMetricsNoObserve pins the baseline arm of the overhead benchmark:
// with Config.NoObserve the stage histograms receive nothing, but the
// counters — and therefore Stats and /healthz — stay fully live.
func TestMetricsNoObserve(t *testing.T) {
	p, eng := newEngine(t, engine.Config{AskTimeout: -1, NoObserve: true})
	q := p.WeatherQuestions()[0]

	if h := eng.StageHistogram(obs.StageIRSearch); h != nil {
		t.Error("StageHistogram must be nil under NoObserve")
	}
	if h := eng.WALFsyncHistogram(); h != nil {
		t.Error("WALFsyncHistogram must be nil under NoObserve")
	}

	var slow logCapture
	eng.SetSlowQueryLog(time.Nanosecond, slow.logf)
	if r := eng.Ask(context.Background(), q); r.Err != nil {
		t.Fatalf("ask: %v", r.Err)
	}
	if lines := slow.all(); len(lines) != 0 {
		t.Errorf("slow-query log fired under NoObserve: %q", lines)
	}

	body := scrape(t, engine.NewServer(eng))
	for _, want := range []string{
		`dwqa_stage_duration_seconds_count{stage="nlp_analyse"} 0`,
		`dwqa_stage_duration_seconds_count{stage="cache_lookup"} 0`,
		"dwqa_cache_misses_total 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if st := eng.Stats(); st.CacheMisses != 1 {
		t.Errorf("Stats().CacheMisses = %d, want 1", st.CacheMisses)
	}
}

// TestSlowQueryLog arms an absurdly low threshold so a single real ask
// crosses it and checks the sampled line carries the per-stage
// breakdown, the outcome and the question.
func TestSlowQueryLog(t *testing.T) {
	p, eng := newEngine(t, engine.Config{AskTimeout: -1})
	q := p.WeatherQuestions()[0]

	var slow logCapture
	eng.SetSlowQueryLog(time.Nanosecond, slow.logf)
	if r := eng.Ask(context.Background(), q); r.Err != nil {
		t.Fatalf("ask: %v", r.Err)
	}
	lines := slow.all()
	if len(lines) != 1 {
		t.Fatalf("slow-query lines = %d (%q), want 1", len(lines), lines)
	}
	for _, want := range []string{"slow query:", "outcome=ok", "nlp_analyse=", "ir_search=", "qa_extract=", q} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("slow-query line %q missing %q", lines[0], want)
		}
	}

	// Disarming stops the log.
	eng.SetSlowQueryLog(0, nil)
	eng.InvalidateCache()
	if r := eng.Ask(context.Background(), q); r.Err != nil {
		t.Fatalf("ask: %v", r.Err)
	}
	if got := slow.all(); len(got) != 1 {
		t.Errorf("disarmed slow-query log still fired: %q", got[1:])
	}
}

// TestAccessLog checks the structured per-request line: request id,
// method, path, status and the shared outcome vocabulary.
func TestAccessLog(t *testing.T) {
	_, eng := newEngine(t, engine.Config{AskTimeout: -1})
	var access logCapture
	srv := engine.NewServerWith(eng, engine.ServerOptions{Logf: access.logf})

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/ask", strings.NewReader(`{}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty POST /ask = %d, want 400", rec.Code)
	}

	lines := access.all()
	if len(lines) != 2 {
		t.Fatalf("access lines = %d (%q), want 2", len(lines), lines)
	}
	for _, want := range []string{"req=", "GET /healthz", "status=200", "outcome=ok", "dur="} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("access line %q missing %q", lines[0], want)
		}
	}
	for _, want := range []string{"POST /ask", "status=400", "outcome=client_error"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("access line %q missing %q", lines[1], want)
		}
	}

	// Quiet suppresses access lines entirely.
	var quiet logCapture
	qsrv := engine.NewServerWith(eng, engine.ServerOptions{Logf: quiet.logf, Quiet: true})
	qsrv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	if got := quiet.all(); len(got) != 0 {
		t.Errorf("quiet server logged %q", got)
	}
}

// TestShardReplicaGauges installs a replication reporter and checks the
// per-shard seq/lag gauges read it at scrape time.
func TestShardReplicaGauges(t *testing.T) {
	_, eng := newEngine(t, engine.Config{AskTimeout: -1})
	stats := []engine.ShardStat{{Shard: 0, Seq: 42, Lag: 3}, {Shard: 1, Seq: 40, Lag: 5}}
	eng.SetShardStats(func() []engine.ShardStat { return stats })

	body := scrape(t, engine.NewServer(eng))
	for _, want := range []string{
		`dwqa_shard_replica_seq{shard="0"} 42`,
		`dwqa_shard_replica_lag{shard="0"} 3`,
		`dwqa_shard_replica_seq{shard="1"} 40`,
		`dwqa_shard_replica_lag{shard="1"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The gauges track the reporter live: a later value shows on the
	// next scrape with no re-registration.
	stats[1].Lag = 0
	if body := scrape(t, engine.NewServer(eng)); !strings.Contains(body, `dwqa_shard_replica_lag{shard="1"} 0`) {
		t.Error("gauge did not track the reporter's new value")
	}
}

// TestMetricsEdgeGauges covers the gauge branches serving never takes on
// the happy path: an index-less engine reports 0 documents/passages, the
// degraded latch flips dwqa_degraded to 1, and a shard gauge whose
// reporter shrank below the registered shard count reads 0 instead of
// indexing past the end.
func TestMetricsEdgeGauges(t *testing.T) {
	p, eng := newEngine(t, engine.Config{AskTimeout: -1})
	srv := engine.NewServer(eng)

	bare, err := engine.New(engine.Config{AskTimeout: -1}, p.QA, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bareBody := scrape(t, engine.NewServer(bare))
	for _, want := range []string{"dwqa_documents 0\n", "dwqa_passages 0\n"} {
		if !strings.Contains(bareBody, want) {
			t.Errorf("index-less exposition missing %q", want)
		}
	}

	eng.EnterDegradedForTest("metrics edge test")
	if body := scrape(t, srv); !strings.Contains(body, "dwqa_degraded 1\n") {
		t.Error("degraded latch not reflected in dwqa_degraded")
	}

	stats := []engine.ShardStat{{Shard: 0, Seq: 5, Lag: 1}, {Shard: 1, Seq: 7, Lag: 2}}
	eng.SetShardStats(func() []engine.ShardStat { return stats })
	stats = stats[:1]
	body := scrape(t, srv)
	if !strings.Contains(body, `dwqa_shard_replica_seq{shard="0"} 5`) {
		t.Error("shard 0 seq not exported")
	}
	for _, want := range []string{
		`dwqa_shard_replica_seq{shard="1"} 0`,
		`dwqa_shard_replica_lag{shard="1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("shrunken reporter: want %q to read 0", want)
		}
	}
}
