package ir

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the retrieval half of the durability subsystem
// (internal/store): bulk export and import of the inverted index —
// documents, analysed sentences (as wire token blocks), passage windows,
// the interned term dictionary and both posting stores (in compressed
// wire form) — plus the redo-journal hook that records indexed
// documents.

// PassageRef is the exported form of one passage window.
type PassageRef struct {
	Doc       int32
	SentStart int32
	SentEnd   int32
}

// Snapshot is a point-in-time copy of the index. Terms[i] is the lemma
// interned as term id i — the append-only id invariant means a snapshot
// restored and then grown by replayed Adds assigns exactly the ids the
// uninterrupted run would have. Produced by Export, consumed by Import;
// internal/store gives it a binary encoding.
//
// Sentences and postings travel in wire form: DocTokens holds each
// document's framed token block (tokcodec.go) against the TokTags /
// TokLemmas intern tables, and the posting lists are delta/varint
// encoded (PostingList). Both forms are canonical — a pure function of
// the logical content — so exports of equivalent indexes are
// byte-identical however the indexes were built, and the store can
// persist the bytes verbatim. Import installs them without re-encoding:
// postings are adopted as-is and token blocks decode lazily on first
// touch.
type Snapshot struct {
	PassageSize int
	Stride      int
	Docs        []Document
	TokTags     []string // token tag intern table, first-occurrence order
	TokLemmas   []string // token lemma intern table, first-occurrence order
	DocTokens   [][]byte // per-document wire token blocks
	DocSents    []int32  // sentences per document
	DocToks     []int32  // tokens per document
	Passages    []PassageRef
	Terms       []string      // term id → lemma
	Postings    []PostingList // term id → passage postings, ascending ids
	DocPostings []PostingList // term id → document postings, ascending ids
}

// Export copies the full index state under the read lock. Posting lists
// are canonicalised into their wire form; documents restored from a
// snapshot re-export their stored token blocks verbatim (whether or not
// they have been lazily decoded), and eagerly-added documents are
// encoded fresh, extending the intern tables in first-occurrence order —
// the same order an uninterrupted run would have produced.
func (ix *Index) Export() *Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := &Snapshot{
		PassageSize: ix.passageSize,
		Stride:      ix.stride,
		Docs:        append([]Document(nil), ix.docs...),
		TokTags:     append([]string(nil), ix.tokTags...),
		TokLemmas:   append([]string(nil), ix.tokLemmas...),
		DocTokens:   make([][]byte, len(ix.docSents)),
		DocSents:    make([]int32, len(ix.docSents)),
		DocToks:     make([]int32, len(ix.docSents)),
		Passages:    make([]PassageRef, len(ix.passages)),
		Terms:       make([]string, len(ix.terms)),
		Postings:    make([]PostingList, len(ix.postings)),
		DocPostings: make([]PostingList, len(ix.docPostings)),
	}
	tagIdx := make(map[string]int, len(snap.TokTags))
	for i, t := range snap.TokTags {
		tagIdx[t] = i
	}
	lemmaIdx := make(map[string]int, len(snap.TokLemmas))
	for i, l := range snap.TokLemmas {
		lemmaIdx[l] = i
	}
	for i, slot := range ix.docSents {
		if slot.block != nil {
			// Stored wire form: reuse verbatim. Its intern indexes point
			// into the stored tables, which are a prefix of the exported
			// ones (tables only ever extend).
			snap.DocTokens[i] = slot.block
			snap.DocSents[i] = slot.nSents
			snap.DocToks[i] = slot.nToks
			continue
		}
		block, tokens := encodeTokenBlock(nil, slot.sents, tagIdx, &snap.TokTags, lemmaIdx, &snap.TokLemmas)
		snap.DocTokens[i] = block
		snap.DocSents[i] = int32(len(slot.sents))
		snap.DocToks[i] = int32(tokens)
	}
	for i, pe := range ix.passages {
		snap.Passages[i] = PassageRef{Doc: int32(pe.doc), SentStart: int32(pe.sentStart), SentEnd: int32(pe.sentEnd)}
	}
	for lemma, id := range ix.terms {
		snap.Terms[id] = lemma
	}
	for i := range ix.postings {
		snap.Postings[i] = ix.postings[i].export()
	}
	for i := range ix.docPostings {
		snap.DocPostings[i] = ix.docPostings[i].export()
	}
	return snap
}

// Import restores a snapshot into an empty index as a bulk load: posting
// lists are adopted in their wire form (validated, never re-encoded),
// passage windows are installed wholesale, and each document's token
// block is kept as-is — structurally validated here, then decoded into
// sentences only when a query first touches the document (sentsAt). The
// term dictionary map is rebuilt in a single pass over Terms. Window
// geometry (passage size, stride) is taken from the snapshot, overriding
// any NewIndex options, because it describes the windows already built.
// Shape mismatches fail loudly before anything is installed. The
// snapshot's byte slices are shared, not copied — the caller must not
// mutate the snapshot afterwards (recovery decodes a fresh one).
func (ix *Index) Import(snap *Snapshot) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.docs) != 0 || len(ix.terms) != 0 {
		return fmt.Errorf("ir: import into a non-empty index")
	}
	if snap.PassageSize < 1 || snap.Stride < 1 || snap.Stride > snap.PassageSize {
		return fmt.Errorf("ir: import: invalid window geometry (size %d, stride %d)", snap.PassageSize, snap.Stride)
	}
	if len(snap.DocTokens) != len(snap.Docs) || len(snap.DocSents) != len(snap.Docs) || len(snap.DocToks) != len(snap.Docs) {
		return fmt.Errorf("ir: import: %d documents but %d/%d/%d token blocks/sentence counts/token counts",
			len(snap.Docs), len(snap.DocTokens), len(snap.DocSents), len(snap.DocToks))
	}
	if len(snap.Postings) != len(snap.Terms) || len(snap.DocPostings) != len(snap.Terms) {
		return fmt.Errorf("ir: import: %d terms but %d/%d posting lists",
			len(snap.Terms), len(snap.Postings), len(snap.DocPostings))
	}
	for i, pe := range snap.Passages {
		if int(pe.Doc) < 0 || int(pe.Doc) >= len(snap.Docs) {
			return fmt.Errorf("ir: import: passage %d references document %d of %d", i, pe.Doc, len(snap.Docs))
		}
		nSents := snap.DocSents[pe.Doc]
		if pe.SentStart < 0 || pe.SentEnd <= pe.SentStart || pe.SentEnd > nSents {
			return fmt.Errorf("ir: import: passage %d window [%d:%d) out of range (document %d has %d sentences)",
				i, pe.SentStart, pe.SentEnd, pe.Doc, nSents)
		}
	}
	terms := make(map[string]int32, len(snap.Terms))
	for id, lemma := range snap.Terms {
		if _, dup := terms[lemma]; dup {
			return fmt.Errorf("ir: import: duplicate term %q in dictionary", lemma)
		}
		terms[lemma] = int32(id)
	}
	checkLists := func(kind string, lists []PostingList, limit int) ([]int32, error) {
		lastIDs := make([]int32, len(lists))
		for id, w := range lists {
			last, err := checkWirePostings(w, limit)
			if err != nil {
				return nil, fmt.Errorf("ir: import: term %d %s postings: %w", id, kind, err)
			}
			lastIDs[id] = last
		}
		return lastIDs, nil
	}
	passLast, err := checkLists("passage", snap.Postings, len(snap.Passages))
	if err != nil {
		return err
	}
	docLast, err := checkLists("document", snap.DocPostings, len(snap.Docs))
	if err != nil {
		return err
	}
	if err := ix.validateBlocks(snap); err != nil {
		return err
	}

	ix.passageSize = snap.PassageSize
	ix.stride = snap.Stride
	ix.docs = append([]Document(nil), snap.Docs...)
	ix.byURL = make(map[string]int, len(snap.Docs))
	for i, d := range snap.Docs {
		if _, ok := ix.byURL[d.URL]; !ok {
			ix.byURL[d.URL] = i
		}
	}
	ix.tokTags = snap.TokTags
	ix.tokLemmas = snap.TokLemmas
	ix.docSents = make([]*docSlot, len(snap.Docs))
	slots := make([]docSlot, len(snap.Docs))
	for i := range slots {
		slots[i] = docSlot{block: snap.DocTokens[i], nSents: snap.DocSents[i], nToks: snap.DocToks[i]}
		ix.docSents[i] = &slots[i]
	}
	ix.passages = make([]passageEntry, len(snap.Passages))
	for i, pe := range snap.Passages {
		ix.passages[i] = passageEntry{
			doc: int(pe.Doc), sentStart: int(pe.SentStart), sentEnd: int(pe.SentEnd), sentOffset: int(pe.SentStart),
		}
	}
	ix.terms = terms
	// Capacity is clamped so a later Add's flush reallocates instead of
	// growing in place into the snapshot buffer (whose tail bytes other
	// lists alias when the store hands us slices of one file image).
	ix.postings = make([]postingList, len(snap.Postings))
	for i, w := range snap.Postings {
		ix.postings[i] = postingList{enc: w.Enc[:len(w.Enc):len(w.Enc)], encN: w.N, lastID: passLast[i]}
	}
	ix.docPostings = make([]postingList, len(snap.DocPostings))
	for i, w := range snap.DocPostings {
		ix.docPostings[i] = postingList{enc: w.Enc[:len(w.Enc):len(w.Enc)], encN: w.N, lastID: docLast[i]}
	}
	return nil
}

// validateBlocks structurally checks every document's token block in
// parallel — the pass that lets sentsAt decode lazily without an error
// path. It is the bulk of import-time CPU, but still an order of
// magnitude cheaper than materialising every token eagerly.
func (ix *Index) validateBlocks(snap *Snapshot) error {
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	next := atomic.Int64{}
	workers := min(runtime.GOMAXPROCS(0), len(snap.Docs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d := int(next.Add(1)) - 1
				if d >= len(snap.Docs) {
					return
				}
				err := validateTokenBlock(snap.DocTokens[d], len(snap.Docs[d].Text),
					int(snap.DocSents[d]), int(snap.DocToks[d]), len(snap.TokTags), len(snap.TokLemmas))
				if err != nil {
					err = fmt.Errorf("ir: import: document %q: %w", snap.Docs[d].URL, err)
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// Journal receives every successfully indexed document — the redo log of
// the durability subsystem (internal/store). Replaying the documents in
// log order on top of a restored snapshot reproduces the exact index
// state, including term ids (the dictionary is append-only in
// first-occurrence order).
type Journal interface {
	LogDocument(doc Document) error
	// LogDocuments records one indexed batch (AddBatch) as a single log
	// record — one fsync per batch instead of per document.
	LogDocuments(docs []Document) error
}

// SetJournal installs (or, with nil, removes) the redo journal. Each Add
// logs its document under the write lock after the document is fully
// indexed, so the log preserves indexing order and only acked documents
// appear in it. Recovery must attach the journal only after WAL replay.
func (ix *Index) SetJournal(j Journal) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.journal = j
}

// SentenceStats reports how many restored documents have had their token
// blocks decoded versus deferred — the observability hook for the lazy
// restore path (documents added live count as decoded).
func (ix *Index) SentenceStats() (decoded, deferred int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, s := range ix.docSents {
		if s.block != nil && s.sents == nil {
			deferred++
		} else {
			decoded++
		}
	}
	return decoded, deferred
}
