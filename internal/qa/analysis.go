package qa

import (
	"fmt"
	"strings"

	"dwqa/internal/nlp"
	"dwqa/internal/ontology"
	"dwqa/internal/sbparser"
	"dwqa/internal/wordnet"
)

// Analysis is the output of Module 1 (question analysis): the matched
// pattern, the expected answer type, the main Syntactic Blocks to hand to
// passage retrieval, and the semantic constraints (dates, locations,
// units) the extractor will enforce.
type Analysis struct {
	Question string
	Tokens   []nlp.Token
	Blocks   []sbparser.Block

	Pattern  *QuestionPattern
	Category Category

	// FocusHead is the lemma of the focus noun ("weather", "country").
	FocusHead string

	// MainSBs are the blocks passed to Module 2 (the focus SB may be
	// dropped per the pattern).
	MainSBs []sbparser.Block

	// Terms are the retrieval terms derived from the main SBs, including
	// ontology expansions.
	Terms []string

	// TermSet is the membership set over Terms, computed once per
	// analysis so the extractors (Module 3) never rebuild it per passage.
	TermSet map[string]bool

	// Expansions records terms added through the shared ontology (e.g.
	// "barcelona" added for the airport "El Prat").
	Expansions []string

	// Dates are the temporal constraints found in the question.
	Dates []sbparser.DateRef

	// Locations are resolved location entities (canonical city names).
	Locations []string

	// ExpectedUnits are acceptable answer units from the unit concept's
	// value-format axioms (empty when the pattern has no unit concept).
	ExpectedUnits []string
}

// ExpectedAnswerType renders the expected answer type the way Table 1
// prints it: "Number + [ºC | F]" for unit-bearing categories, else the
// taxonomy category name.
func (a *Analysis) ExpectedAnswerType() string {
	if len(a.ExpectedUnits) > 0 {
		return "Number + [" + strings.Join(a.ExpectedUnits, " | ") + "]"
	}
	return string(a.Category)
}

// MainSBStrings renders the main SBs bracketed, Table 1 style:
// "[January of 2004]  [El Prat]  [Barcelona]". Ontology expansions are
// appended as extra pseudo-SBs exactly as the paper's trace shows
// Barcelona next to El Prat.
func (a *Analysis) MainSBStrings() []string {
	var out []string
	for _, b := range a.MainSBs {
		if np := cloneInner(b); np != "" {
			out = append(out, "["+np+"]")
		}
	}
	for _, e := range a.Expansions {
		out = append(out, "["+e+"]")
	}
	return out
}

func cloneInner(b sbparser.Block) string {
	switch b.Type {
	case sbparser.PP:
		if np := b.InnerNP(); np != nil {
			// Include the preposition for readability: "January of 2004"
			// renders from the PP chain; we print the inner NP text.
			return strings.TrimSpace(strings.TrimPrefix(b.Text(), b.Tokens[0].Text+" "))
		}
		return ""
	case sbparser.NP:
		return b.Text()
	default:
		return ""
	}
}

// analyze runs Module 1 for a question against the system's knowledge.
func (s *System) analyze(question string) (*Analysis, error) {
	question = strings.TrimSpace(question)
	if question == "" {
		return nil, fmt.Errorf("qa: empty question")
	}
	sents := nlp.SplitSentences(question)
	if len(sents) == 0 {
		return nil, fmt.Errorf("qa: unanalysable question %q", question)
	}
	toks := sents[0].Tokens
	blocks := sbparser.Parse(sents[0])
	facts := extractFacts(toks, blocks)

	// Pattern matching: the snapshot is already sorted highest priority
	// first, ties by installation order.
	var matched *QuestionPattern
	for _, p := range s.snapshotPatterns() {
		if p.match(s.lexicon(), facts) {
			matched = p
			break
		}
	}
	if matched == nil {
		return nil, fmt.Errorf("qa: no question pattern matches %q", question)
	}

	a := &Analysis{
		Question:  question,
		Tokens:    toks,
		Blocks:    blocks,
		Pattern:   matched,
		FocusHead: facts.focusHead,
	}
	a.Category = matched.Category
	if a.Category == "" {
		a.Category = ClassifyFocus(s.lexicon(), facts.focusHead)
		// "What is <Entity>?" with a proper-noun focus asks for a
		// definition, not for hyponyms of the entity.
		if a.Category == CatObject && facts.focus != nil && facts.focus.Sub == sbparser.SubProperNoun {
			a.Category = CatDefinition
		}
	}

	// Expected units from the ontology axioms (Step 4 knowledge).
	if matched.UnitConcept != "" && s.dom != nil {
		for _, ax := range s.dom.AxiomsFor(matched.UnitConcept, ontology.AxiomValueFormat) {
			a.ExpectedUnits = append(a.ExpectedUnits, ax.Units...)
		}
	}
	if matched.UnitConcept != "" && len(a.ExpectedUnits) == 0 {
		// Untuned fallback: the bare scale letters.
		a.ExpectedUnits = []string{"ºC", "F"}
	}

	// Main SBs: every NP/PP except the focus (when dropped) and wh tokens.
	// Definition questions keep the focus — the entity being defined is
	// the only retrievable term ("What is Sirius?").
	dropFocus := matched.DropFocus && a.Category != CatDefinition
	for _, b := range blocks {
		if b.Type == sbparser.VBC {
			continue
		}
		if dropFocus && facts.focus != nil && sameBlock(b, *facts.focus) {
			continue
		}
		a.MainSBs = append(a.MainSBs, b)
	}

	// Temporal constraints.
	a.Dates = sbparser.ExtractDates(a.MainSBs)

	// Terms and entity resolution.
	seen := map[string]bool{}
	addTerm := func(t string) {
		t = strings.ToLower(t)
		if t != "" && !seen[t] {
			seen[t] = true
			a.Terms = append(a.Terms, t)
		}
	}
	for _, b := range a.MainSBs {
		for _, l := range b.ContentLemmas() {
			addTerm(l)
		}
	}
	// Verb lemmas join the terms (the paper's CLEF trace passes [to
	// invade] to Module 2).
	for _, v := range facts.verbLemmas {
		if v != "be" && v != "have" && v != "do" && !nlp.IsStopword(v) {
			addTerm(v)
		}
	}

	// Ontology-driven entity resolution and expansion (the Step 2-3
	// payoff): proper-noun SBs that resolve to domain instances contribute
	// their city, and location entities are canonicalised.
	if s.cfg.UseOntology {
		s.resolveEntities(a, addTerm)
	} else {
		// Without the ontology only surface city names are recognised.
		s.resolveSurfaceLocations(a)
	}
	// seen is exactly the membership set over a.Terms (addTerm keeps them
	// in lockstep); publish it for the extractors.
	a.TermSet = seen
	return a, nil
}

// termSet returns the question-term membership set. Analyses produced by
// analyze carry it precomputed; hand-built values (tests) fall back to
// building one.
func (a *Analysis) termSet() map[string]bool {
	if a.TermSet != nil {
		return a.TermSet
	}
	set := make(map[string]bool, len(a.Terms))
	for _, t := range a.Terms {
		set[t] = true
	}
	return set
}

// sameBlock compares blocks by their first token offset.
func sameBlock(a, b sbparser.Block) bool {
	if len(a.Tokens) == 0 || len(b.Tokens) == 0 {
		return false
	}
	return a.Tokens[0].Start == b.Tokens[0].Start && a.Type == b.Type
}

// resolveEntities resolves proper-noun SBs against the shared ontology and
// the merged lexicon: airports map to their city ("El Prat" → Barcelona),
// cities canonicalise, and each resolution can add expansion terms.
func (s *System) resolveEntities(a *Analysis, addTerm func(string)) {
	for _, b := range a.MainSBs {
		np := b.InnerNP()
		if np == nil || np.Sub != sbparser.SubProperNoun {
			continue
		}
		name := strings.ToLower(np.Text())

		// Domain ontology instance? (Step 2 contents.)
		if s.dom != nil {
			if concept, inst := s.dom.FindInstance(name); inst != nil {
				if city, ok := inst.Properties["locatedIn"]; ok {
					a.Locations = appendUnique(a.Locations, city)
					for _, f := range strings.Fields(strings.ToLower(city)) {
						addTerm(f)
					}
					a.Expansions = append(a.Expansions, city)
					continue
				}
				if strings.EqualFold(concept, "City") {
					a.Locations = appendUnique(a.Locations, inst.Name)
					continue
				}
			}
		}
		// Merged lexicon: airport instance with a holonym city.
		wn := s.lexicon()
		resolved := false
		for _, sense := range wn.Lookup(name, wordnet.Noun) {
			if wn.IsA(sense.ID, "n.airport") {
				for _, h := range sense.Related(wordnet.PartHolonym) {
					if hs := wn.Synset(h); hs != nil && wn.IsA(hs.ID, "n.city") {
						city := titleCase(hs.CanonicalLemma())
						a.Locations = appendUnique(a.Locations, city)
						for _, f := range strings.Fields(hs.CanonicalLemma()) {
							addTerm(f)
						}
						a.Expansions = append(a.Expansions, city)
						resolved = true
					}
				}
			}
			if wn.IsA(sense.ID, "n.city") {
				a.Locations = appendUnique(a.Locations, titleCase(sense.CanonicalLemma()))
				resolved = true
			}
		}
		_ = resolved
	}
}

// resolveSurfaceLocations is the ablation path: only names that are
// literally city senses in the untuned lexicon become locations.
func (s *System) resolveSurfaceLocations(a *Analysis) {
	wn := s.lexicon()
	for _, b := range a.MainSBs {
		np := b.InnerNP()
		if np == nil || np.Sub != sbparser.SubProperNoun {
			continue
		}
		name := strings.ToLower(np.Text())
		for _, sense := range wn.Lookup(name, wordnet.Noun) {
			if wn.IsA(sense.ID, "n.city") {
				a.Locations = appendUnique(a.Locations, titleCase(sense.CanonicalLemma()))
			}
		}
	}
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return list
		}
	}
	return append(list, s)
}

// titleCase renders a lexicon lemma as a display name ("new york" → "New
// York").
func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if len(f) > 0 {
			fields[i] = strings.ToUpper(f[:1]) + f[1:]
		}
	}
	return strings.Join(fields, " ")
}
