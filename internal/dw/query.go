package dw

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Agg is an aggregation function applied to a measure.
type Agg string

// Supported aggregation functions.
const (
	Sum   Agg = "sum"
	Count Agg = "count"
	Avg   Agg = "avg"
	Min   Agg = "min"
	Max   Agg = "max"
)

// LevelSel selects the aggregation level for one role of the fact: "group
// the Destination role at the City level". Rolling up means selecting a
// coarser level; drilling down a finer one.
type LevelSel struct {
	Role  string
	Level string
}

// Filter keeps fact rows whose member (for Role, at Level) is in Values —
// the OLAP slice (single value) and dice (several values) operations.
type Filter struct {
	Role   string
	Level  string
	Values []string
}

// Query is an OLAP query over one fact table.
type Query struct {
	Fact    string
	Measure string
	Agg     Agg
	GroupBy []LevelSel
	Filters []Filter
}

// Row is one result row: the group member names (in GroupBy order), the
// aggregated value and the number of fact rows aggregated.
type Row struct {
	Groups []string
	Value  float64
	Count  int
}

// Result is a deterministic (sorted) result set.
type Result struct {
	Query Query
	Rows  []Row
}

// Execute runs an OLAP query against the warehouse.
func (w *Warehouse) Execute(q Query) (*Result, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()

	fd, ok := w.facts[q.Fact]
	if !ok {
		return nil, fmt.Errorf("dw: unknown fact %q", q.Fact)
	}
	if q.Agg != Count {
		if fd.class.Measure(q.Measure) == nil {
			return nil, fmt.Errorf("dw: fact %q has no measure %q", q.Fact, q.Measure)
		}
	}
	switch q.Agg {
	case Sum, Count, Avg, Min, Max:
	default:
		return nil, fmt.Errorf("dw: unknown aggregation %q", q.Agg)
	}
	// Pre-resolve the dimension of each role used by group-bys and filters.
	roleDim := map[string]string{}
	for _, ref := range fd.class.Dimensions {
		roleDim[ref.Role] = ref.Dimension
	}
	for _, g := range q.GroupBy {
		if err := w.checkRoleLevelLocked(roleDim, g.Role, g.Level, q.Fact); err != nil {
			return nil, err
		}
	}
	// Compile filters to allowed surrogate-key sets at their level.
	type compiledFilter struct {
		role, level string
		allowed     map[int]bool
	}
	var filters []compiledFilter
	for _, f := range q.Filters {
		if err := w.checkRoleLevelLocked(roleDim, f.Role, f.Level, q.Fact); err != nil {
			return nil, err
		}
		allowed := make(map[int]bool, len(f.Values))
		lt := w.dims[roleDim[f.Role]].levels[f.Level]
		for _, v := range f.Values {
			key, ok := lt.byName[v]
			if !ok {
				// A filter value that matches no member simply matches no
				// rows; this is not an error (slicing on "Oz" is empty).
				continue
			}
			allowed[key] = true
		}
		filters = append(filters, compiledFilter{f.Role, f.Level, allowed})
	}

	type cell struct {
		groups []string
		sum    float64
		count  int
		min    float64
		max    float64
	}
	cells := map[string]*cell{}

rows:
	for _, row := range fd.rows {
		for _, f := range filters {
			key := w.rollUpKeyLocked(roleDim[f.role], row.Coords[f.role], f.level)
			if key == NoParent || !f.allowed[key] {
				continue rows
			}
		}
		groups := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			key := w.rollUpKeyLocked(roleDim[g.Role], row.Coords[g.Role], g.Level)
			if key == NoParent {
				groups[i] = "(unknown)"
			} else {
				groups[i] = w.memberNameLocked(roleDim[g.Role], g.Level, key)
			}
		}
		ck := strings.Join(groups, "\x00")
		c, ok := cells[ck]
		if !ok {
			c = &cell{groups: groups, min: math.Inf(1), max: math.Inf(-1)}
			cells[ck] = c
		}
		v := row.Measures[q.Measure]
		c.sum += v
		c.count++
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}

	res := &Result{Query: q}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := cells[k]
		var v float64
		switch q.Agg {
		case Sum:
			v = c.sum
		case Count:
			v = float64(c.count)
		case Avg:
			v = c.sum / float64(c.count)
		case Min:
			v = c.min
		case Max:
			v = c.max
		}
		res.Rows = append(res.Rows, Row{Groups: c.groups, Value: v, Count: c.count})
	}
	return res, nil
}

func (w *Warehouse) checkRoleLevelLocked(roleDim map[string]string, role, level, fact string) error {
	dim, ok := roleDim[role]
	if !ok {
		return fmt.Errorf("dw: fact %q has no role %q", fact, role)
	}
	if w.dims[dim].class.PathTo(level) == nil {
		return fmt.Errorf("dw: level %q is not on the roll-up path of dimension %q", level, dim)
	}
	return nil
}

// RollUp re-runs a query with one role moved to a coarser level.
func (w *Warehouse) RollUp(q Query, role, toLevel string) (*Result, error) {
	return w.Execute(retarget(q, role, toLevel))
}

// DrillDown re-runs a query with one role moved to a finer level. The
// mechanics are the same as RollUp; the direction is the caller's intent
// ("drilling down to obtain those documents published in July 1998").
func (w *Warehouse) DrillDown(q Query, role, toLevel string) (*Result, error) {
	return w.Execute(retarget(q, role, toLevel))
}

// Slice adds a single-value filter to a query and runs it.
func (w *Warehouse) Slice(q Query, role, level, value string) (*Result, error) {
	q.Filters = append(append([]Filter(nil), q.Filters...), Filter{role, level, []string{value}})
	return w.Execute(q)
}

// Dice adds a multi-value filter to a query and runs it.
func (w *Warehouse) Dice(q Query, role, level string, values []string) (*Result, error) {
	q.Filters = append(append([]Filter(nil), q.Filters...), Filter{role, level, values})
	return w.Execute(q)
}

func retarget(q Query, role, toLevel string) Query {
	gb := make([]LevelSel, len(q.GroupBy))
	copy(gb, q.GroupBy)
	replaced := false
	for i := range gb {
		if gb[i].Role == role {
			gb[i].Level = toLevel
			replaced = true
		}
	}
	if !replaced {
		gb = append(gb, LevelSel{role, toLevel})
	}
	q.GroupBy = gb
	return q
}

// Format renders the result as an aligned text table (used by the OLAP CLI
// and the experiment reports).
func (r *Result) Format() string {
	var b strings.Builder
	header := make([]string, 0, len(r.Query.GroupBy)+1)
	for _, g := range r.Query.GroupBy {
		header = append(header, g.Role+"/"+g.Level)
	}
	header = append(header, fmt.Sprintf("%s(%s)", r.Query.Agg, r.Query.Measure))
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cellsOf := func(row Row) []string {
		cells := append([]string(nil), row.Groups...)
		return append(cells, fmt.Sprintf("%.2f", row.Value))
	}
	for _, row := range r.Rows {
		for i, c := range cellsOf(row) {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range r.Rows {
		writeRow(cellsOf(row))
	}
	return b.String()
}
