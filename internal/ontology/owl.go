package ontology

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
)

// This file serialises an ontology to a simplified OWL/XML document and
// parses it back. The paper's Step 1(b): "the generation of the ontology
// in some of the ontology representation languages. For instance, we can
// use the most extended ontology language, OWL".

type owlDoc struct {
	XMLName     xml.Name        `xml:"Ontology"`
	Name        string          `xml:"name,attr"`
	Classes     []owlClass      `xml:"Class"`
	Individuals []owlIndividual `xml:"NamedIndividual"`
}

type owlClass struct {
	Name       string         `xml:"name,attr"`
	SubClassOf []string       `xml:"SubClassOf"`
	Attributes []owlAttribute `xml:"DatatypeProperty"`
	Relations  []owlRelation  `xml:"ObjectProperty"`
	Axioms     []owlAxiom     `xml:"Axiom"`
}

type owlAttribute struct {
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
	Type string `xml:"type,attr"`
}

type owlRelation struct {
	Name   string `xml:"name,attr"`
	Target string `xml:"target,attr"`
}

type owlAxiom struct {
	Kind     string   `xml:"kind,attr"`
	Units    []string `xml:"Unit"`
	RefUnit  string   `xml:"unit,attr,omitempty"`
	Min      float64  `xml:"min,attr,omitempty"`
	Max      float64  `xml:"max,attr,omitempty"`
	FromUnit string   `xml:"from,attr,omitempty"`
	ToUnit   string   `xml:"to,attr,omitempty"`
	Scale    float64  `xml:"scale,attr,omitempty"`
	Offset   float64  `xml:"offset,attr,omitempty"`
}

type owlIndividual struct {
	Name       string        `xml:"name,attr"`
	Class      string        `xml:"class,attr"`
	Aliases    []string      `xml:"Alias"`
	Properties []owlProperty `xml:"Property"`
}

type owlProperty struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// WriteOWL serialises the ontology as indented OWL-style XML.
func (o *Ontology) WriteOWL(w io.Writer) error {
	o.mu.RLock()
	doc := owlDoc{Name: o.Name}
	keys := make([]string, 0, len(o.concepts))
	for k := range o.concepts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := o.concepts[k]
		oc := owlClass{Name: c.Name, SubClassOf: append([]string(nil), c.Parents...)}
		for _, a := range c.Attributes {
			oc.Attributes = append(oc.Attributes, owlAttribute{a.Name, string(a.Kind), a.Type})
		}
		for _, r := range c.Relations {
			oc.Relations = append(oc.Relations, owlRelation{r.Name, r.Target})
		}
		for _, a := range c.Axioms {
			oc.Axioms = append(oc.Axioms, owlAxiom{
				Kind: string(a.Kind), Units: a.Units, RefUnit: a.Unit,
				Min: a.Min, Max: a.Max, FromUnit: a.FromUnit, ToUnit: a.ToUnit,
				Scale: a.Scale, Offset: a.Offset,
			})
		}
		doc.Classes = append(doc.Classes, oc)

		instKeys := make([]string, 0, len(c.Instances))
		for ik := range c.Instances {
			instKeys = append(instKeys, ik)
		}
		sort.Strings(instKeys)
		for _, ik := range instKeys {
			inst := c.Instances[ik]
			oi := owlIndividual{Name: inst.Name, Class: c.Name, Aliases: append([]string(nil), inst.Aliases...)}
			propKeys := make([]string, 0, len(inst.Properties))
			for pk := range inst.Properties {
				propKeys = append(propKeys, pk)
			}
			sort.Strings(propKeys)
			for _, pk := range propKeys {
				oi.Properties = append(oi.Properties, owlProperty{pk, inst.Properties[pk]})
			}
			doc.Individuals = append(doc.Individuals, oi)
		}
	}
	o.mu.RUnlock()

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("ontology: OWL encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadOWL parses an OWL-style XML document produced by WriteOWL.
func ReadOWL(r io.Reader) (*Ontology, error) {
	var doc owlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ontology: OWL decode: %w", err)
	}
	o := New(doc.Name)
	for _, oc := range doc.Classes {
		o.AddConcept(oc.Name)
		for _, p := range oc.SubClassOf {
			o.Subclass(oc.Name, p)
		}
		for _, a := range oc.Attributes {
			o.AddAttribute(oc.Name, Attribute{a.Name, AttrKind(a.Kind), a.Type})
		}
		for _, rel := range oc.Relations {
			o.AddRelation(oc.Name, Relation{rel.Name, rel.Target})
		}
		for _, ax := range oc.Axioms {
			err := o.AddAxiom(Axiom{
				Concept: oc.Name, Kind: AxiomKind(ax.Kind), Units: ax.Units,
				Unit: ax.RefUnit, Min: ax.Min, Max: ax.Max,
				FromUnit: ax.FromUnit, ToUnit: ax.ToUnit,
				Scale: ax.Scale, Offset: ax.Offset,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	for _, oi := range doc.Individuals {
		props := map[string]string{}
		for _, p := range oi.Properties {
			props[p.Name] = p.Value
		}
		o.AddInstance(oi.Class, Instance{Name: oi.Name, Aliases: oi.Aliases, Properties: props})
	}
	return o, nil
}
