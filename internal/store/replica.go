package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Read-only access to a leader's data directory, for followers that
// serve from shipped snapshots and tail the WAL by sequence number.
// Nothing here opens the WAL for writing or repairs it: the leader owns
// the files; a follower only ever observes them.

// ErrReplicaGap reports that the leader's WAL no longer holds the
// records immediately after the follower's applied sequence — the leader
// published a snapshot covering them and reset the log. The follower
// must reload from the newest snapshot (ReadSnapshot) and resume tailing
// from its WALSeq; incremental catch-up is impossible.
var ErrReplicaGap = errors.New("store: WAL records beyond the follower's position were absorbed into a snapshot")

// ReadSnapshot loads the newest valid snapshot in a data directory
// without taking ownership of it (no WAL open, no temp-file cleanup).
// Corrupt snapshots fall back to older ones exactly like the leader's
// LoadSnapshot; a directory with no snapshot at all returns (nil, "",
// nil).
func ReadSnapshot(fsys FS, dir string) (*State, string, error) {
	if fsys == nil {
		fsys = OS()
	}
	paths, _ := fsys.Glob(filepath.Join(dir, snapshotPrefix+"*"+snapshotSuffix))
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	if len(paths) == 0 {
		return nil, "", nil
	}
	var failures []string
	for _, p := range paths {
		data, err := fsys.ReadFile(p)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", filepath.Base(p), err))
			continue
		}
		state, err := DecodeState(data)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", filepath.Base(p), err))
			continue
		}
		return state, p, nil
	}
	return nil, "", fmt.Errorf("store: no readable snapshot in %s: %s", dir, strings.Join(failures, "; "))
}

// SnapshotSeq returns the WAL sequence the newest published snapshot in
// the directory declares in its filename (the leader names each file by
// the sequence it covers), or false when the directory holds none.
func SnapshotSeq(fsys FS, dir string) (uint64, bool) {
	if fsys == nil {
		fsys = OS()
	}
	paths, _ := fsys.Glob(filepath.Join(dir, snapshotPrefix+"*"+snapshotSuffix))
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		if seq, ok := snapshotSeqFromPath(p); ok {
			return seq, true
		}
	}
	return 0, false
}

// TailWAL reads the directory's WAL read-only and applies every record
// with seq > afterSeq through the handlers, in order. A torn tail is
// ignored, never truncated — the bytes may be a leader append in flight,
// and the next poll will see them whole. It returns how many records
// were applied and the new applied sequence.
//
// When the log's oldest retained record is beyond afterSeq+1, the
// follower missed records that now live only inside a snapshot:
// TailWAL applies nothing and returns ErrReplicaGap so the caller can
// reload from the snapshot instead of serving a silently holey state.
// A missing WAL file reads as an empty log (the leader may not have
// created it yet, or a snapshot reset may have raced the read).
func TailWAL(fsys FS, dir string, afterSeq uint64, h ReplayHandlers) (applied int, newSeq uint64, err error) {
	if fsys == nil {
		fsys = OS()
	}
	data, rerr := fsys.ReadFile(filepath.Join(dir, walName))
	if rerr != nil {
		return 0, afterSeq, nil
	}
	_, _, records := scanWAL(data, 0)
	if len(records) == 0 {
		return 0, afterSeq, nil
	}
	if first := records[0].seq; first > afterSeq+1 {
		return 0, afterSeq, fmt.Errorf("%w (applied %d, log starts at %d)", ErrReplicaGap, afterSeq, first)
	}
	newSeq = afterSeq
	for _, rec := range records {
		if rec.seq <= newSeq {
			continue
		}
		if err := applyRecord(rec, h); err != nil {
			return applied, newSeq, err
		}
		newSeq = rec.seq
		applied++
	}
	return applied, newSeq, nil
}
