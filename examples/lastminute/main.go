// Last Minute Sales: the paper's full running example, narrated step by
// step — the airline's marketing department wants to know the range of
// temperatures that increases last-minute sales to each city, so ticket
// prices can be adjusted.
//
//	go run ./examples/lastminute
package main

import (
	"fmt"
	"log"

	"dwqa"
)

func main() {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scenario (paper Figure 1):")
	fmt.Print(p.Schema.Describe())
	fmt.Printf("sales history: %d fact rows\n\n", p.Warehouse.FactCount("LastMinuteSales"))

	// Step 1: domain ontology from the UML multidimensional model.
	if err := p.Step1DeriveOntology(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 1: derived ontology with %d concepts (paper Figure 2)\n", p.Ontology.Size())

	// Step 2: feed it with the DW contents.
	if err := p.Step2FeedOntology(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 2: fed %d instances from the warehouse (airports, cities, countries)\n",
		p.Ontology.InstanceCount())

	// Step 3: merge into the QA system's upper ontology.
	if err := p.Step3MergeUpperOntology(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 3: %s\n", p.MergeReport)

	// Step 4: tune the QA system to weather queries.
	if err := p.Step4TuneQA(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step 4: weather question patterns installed; Temperature axioms attached")

	// Step 5: harvest the web and feed the warehouse.
	results, err := p.Step5FeedWarehouse(p.WeatherQuestions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 5: %s\n", p.LoadReport)
	for _, r := range results[:3] {
		fmt.Printf("  e.g. %q → %d records\n", r.Question, r.Answers)
	}

	// Show the paper's Table 1 trace for its own query.
	tr, err := p.Table1("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1 trace:")
	fmt.Print(tr.Format())

	// The analysis the schema alone could not support.
	rep, err := dwqa.AnalyzeSalesWeather(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBI analysis over the enriched warehouse:")
	fmt.Print(rep.Format())
}
