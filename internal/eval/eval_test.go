package eval

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsMath(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, FN: 2}
	if p := m.Precision(); p != 0.8 {
		t.Errorf("precision = %v", p)
	}
	if r := m.Recall(); r != 0.8 {
		t.Errorf("recall = %v", r)
	}
	if f := m.F1(); math.Abs(f-0.8) > 1e-9 {
		t.Errorf("F1 = %v", f)
	}
	zero := Metrics{}
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
	sum := Metrics{TP: 1}
	sum.Add(Metrics{TP: 2, FP: 3, FN: 4})
	if sum.TP != 3 || sum.FP != 3 || sum.FN != 4 {
		t.Errorf("Add = %+v", sum)
	}
}

func TestMRR(t *testing.T) {
	if v := MRR([]int{1, 2, 0}); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("MRR = %v, want 0.5", v)
	}
	if MRR(nil) != 0 {
		t.Error("empty MRR should be 0")
	}
}

func TestTableFormatAndMarkdown(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("one", 0.5)
	tbl.AddRow(2, "two")
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Format()
	for _, want := range []string{"== X: demo ==", "one", "0.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### X: demo", "| a | b |", "| --- | --- |", "| one | 0.500 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFigure1Artifact(t *testing.T) {
	tbl, err := NewSuite().Figure1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	for _, want := range []string{"fact LastMinuteSales", "Price", "Departure→Airport", "Airport → City → Country"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
}

// parseCell reads a float cell from a table row keyed by first column.
func cellValue(t *testing.T, tbl *Table, rowKey string, col int) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], rowKey) {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("cell %q not a number: %v", row[col], err)
			}
			return v
		}
	}
	t.Fatalf("row %q not found in %s", rowKey, tbl.ID)
	return 0
}

// TestExperimentShapes verifies the qualitative shapes the paper claims;
// the exact numbers live in EXPERIMENTS.md.
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	s := NewSuite()

	f4, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if p := cellValue(t, f4, "TOTAL", 2); p < 0.95 {
		t.Errorf("F4 prose precision = %v, want near 1", p)
	}

	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	naive := cellValue(t, f5, "naive", 1)
	aware := cellValue(t, f5, "table-aware", 1)
	if naive >= 0.95 {
		t.Errorf("F5 naive precision = %v, should be clearly lower than prose", naive)
	}
	if aware <= naive {
		t.Errorf("F5 table-aware precision %v should beat naive %v", aware, naive)
	}
	naiveF1 := cellValue(t, f5, "naive", 3)
	awareF1 := cellValue(t, f5, "table-aware", 3)
	if awareF1 <= naiveF1 {
		t.Errorf("F5 table-aware F1 %v should beat naive %v", awareF1, naiveF1)
	}

	qair, err := s.QAvsIR()
	if err != nil {
		t.Fatal(err)
	}
	qaP := cellValue(t, qair, "QA", 2)
	irP := cellValue(t, qair, "IR", 2)
	if qaP <= irP {
		t.Errorf("QA precision %v should beat IR %v", qaP, irP)
	}
	qaBytes := cellValue(t, qair, "QA", 3)
	irBytes := cellValue(t, qair, "IR", 3)
	if qaBytes*10 > irBytes {
		t.Errorf("QA output (%v bytes) should be far smaller than IR documents (%v bytes)", qaBytes, irBytes)
	}

	onto, err := s.OntologyAblation()
	if err != nil {
		t.Fatal(err)
	}
	withAcc := cellValue(t, onto, "with ontology", 3)
	withoutAcc := cellValue(t, onto, "without ontology", 3)
	if withAcc <= withoutAcc {
		t.Errorf("ontology accuracy %v should beat ablated %v", withAcc, withoutAcc)
	}
	if withAcc < 0.9 {
		t.Errorf("tuned accuracy = %v, want >= 0.9", withAcc)
	}
}

func TestFeedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tbl, err := NewSuite().Feed()
	if err != nil {
		t.Fatal(err)
	}
	loaded := cellValue(t, tbl, "records loaded", 1)
	if loaded < 200 {
		t.Errorf("loaded = %v, want a substantial feed", loaded)
	}
	r := cellValue(t, tbl, "Pearson", 1)
	if r < 0.3 {
		t.Errorf("correlation = %v, want clearly positive", r)
	}
}
