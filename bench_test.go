// Benchmarks regenerating every table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md). Each benchmark
// runs the corresponding experiment of internal/eval end to end; the
// tables themselves are produced by cmd/benchreport and recorded in
// EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package dwqa_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dwqa"
	"dwqa/internal/core"
	"dwqa/internal/engine"
	"dwqa/internal/etl"
	"dwqa/internal/eval"
	"dwqa/internal/ir"
	"dwqa/internal/nl2olap"
	"dwqa/internal/webcorpus"
)

func benchExperiment(b *testing.B, run func() (*eval.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkFigure1SchemaBuild regenerates the multidimensional model of
// the paper's Figure 1.
func BenchmarkFigure1SchemaBuild(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Figure1)
}

// BenchmarkFigure2Uml2Onto regenerates the derived-and-merged ontology of
// the paper's Figure 2 (Steps 1-3).
func BenchmarkFigure2Uml2Onto(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Figure2)
}

// BenchmarkFigure3IndexAndSearch exercises the AliQAn two-phase
// architecture of the paper's Figure 3.
func BenchmarkFigure3IndexAndSearch(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Figure3)
}

// BenchmarkTable1Pipeline regenerates the paper's Table 1 trace.
func BenchmarkTable1Pipeline(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Table1)
}

// BenchmarkFigure4ProseExtraction measures extraction from prose weather
// pages (the paper's Figure 4 success case).
func BenchmarkFigure4ProseExtraction(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Figure4)
}

// BenchmarkFigure5TableExtraction measures extraction from table-form
// pages, naive vs table-aware (the paper's Figure 5 and its §5 future
// work).
func BenchmarkFigure5TableExtraction(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Figure5)
}

// BenchmarkQAvsIR quantifies the paper's §1 QA-vs-IR comparison.
func BenchmarkQAvsIR(b *testing.B) {
	benchExperiment(b, eval.NewSuite().QAvsIR)
}

// BenchmarkOntologyAblation quantifies the Steps 2-3 enrichment claim.
func BenchmarkOntologyAblation(b *testing.B) {
	benchExperiment(b, eval.NewSuite().OntologyAblation)
}

// BenchmarkIRFilterAblation quantifies the IR-as-first-filter claim.
func BenchmarkIRFilterAblation(b *testing.B) {
	benchExperiment(b, eval.NewSuite().IRFilter)
}

// BenchmarkPassageSizeAblation sweeps the IR-n sentence-window size
// (paper footnote 6 fixes it at eight).
func BenchmarkPassageSizeAblation(b *testing.B) {
	benchExperiment(b, eval.NewSuite().PassageSize)
}

// BenchmarkStep5FeedAndBI runs the Step 5 feed plus the sales×weather BI
// analysis (the paper's §4.2 outcome and motivating scenario).
func BenchmarkStep5FeedAndBI(b *testing.B) {
	benchExperiment(b, eval.NewSuite().Feed)
}

// BenchmarkAskSingleQuestion isolates the per-question latency of the
// tuned system (the search phase only; the pipeline is built once).
func BenchmarkAskSingleQuestion(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Ask("What is the weather like in January of 2004 in El Prat?")
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("no answer")
		}
	}
}

// benchOLAPExecute benchmarks the compiled columnar engine against the
// retained row-at-a-time reference engine over the same generated
// warehouse, verifying first that both return identical results.
func benchOLAPExecute(b *testing.B, targetRows int) {
	wh, q, err := core.PrepareScaledBenchmark(targetRows, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("fact rows: %d", wh.FactCount("LastMinuteSales"))
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunCompiledOLAP(wh, q, b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunReferenceOLAP(wh, q, b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkOLAPExecute1k exercises the single-chunk sequential scan.
func BenchmarkOLAPExecute1k(b *testing.B) { benchOLAPExecute(b, 1_000) }

// BenchmarkOLAPExecute10k crosses the chunking threshold.
func BenchmarkOLAPExecute10k(b *testing.B) { benchOLAPExecute(b, 10_000) }

// BenchmarkOLAPExecute100k is the headline scaling benchmark: a grouped
// roll-up with a dice filter over 100k+ generated fact rows, compiled vs
// reference in the same run.
func BenchmarkOLAPExecute100k(b *testing.B) { benchOLAPExecute(b, 100_000) }

// BenchmarkIRSearchTopK measures passage retrieval with the bounded top-k
// heap over the scenario corpus (the IR-n filter of Figure 3).
func BenchmarkIRSearchTopK(b *testing.B) {
	ccfg := webcorpus.DefaultConfig()
	ccfg.Year, ccfg.Months, ccfg.Seed = 2004, []int{1, 2, 3}, 42
	corpus := webcorpus.Build(ccfg)
	ix := ir.NewIndex()
	if err := ix.AddAll(corpus.Documents(false)); err != nil {
		b.Fatal(err)
	}
	terms := ir.QueryTerms("What is the weather like in Barcelona in January?")
	if len(ix.Search(terms, 10)) == 0 {
		b.Fatal("no search results")
	}
	b.Logf("passages: %d", ix.PassageCount())
	b.ReportAllocs()
	b.ResetTimer()
	if err := core.RunIRSearchTopK(ix, terms, 10, b.N); err != nil {
		b.Fatal(err)
	}
}

// benchIRSearchScaled benchmarks the sparse passage scorer against the
// retained dense reference over a generated corpus of the target size,
// verifying first that both rank every workload query byte-identically.
// The workload cycles per-city cold-path queries (the main-SB [city,
// month] shape question analysis sends to IR-n after dropping the focus
// noun), so the matched-postings fraction stays realistic at every scale.
func benchIRSearchScaled(b *testing.B, targetPassages int) {
	sc, err := core.BuildScaledCorpus(targetPassages, 42)
	if err != nil {
		b.Fatal(err)
	}
	if err := core.VerifyScaledIR(sc, 10); err != nil {
		b.Fatal(err)
	}
	queries := sc.Queries()
	b.Logf("passages: %d, cities: %d, terms: %d", sc.Index.PassageCount(), len(sc.Cities), sc.Index.TermCount())
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunIRSearchSparse(sc.Index, queries, 10, b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunIRSearchDense(sc.Index, queries, 10, b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkIRSearch1k is the toy scale: the dense sweep is tiny, so the
// two scorers are within noise of each other here.
func BenchmarkIRSearch1k(b *testing.B) { benchIRSearchScaled(b, 1_000) }

// BenchmarkIRSearch10k crosses the scale where the dense engine's
// O(index) allocate-and-sweep dominates the matched postings.
func BenchmarkIRSearch10k(b *testing.B) { benchIRSearchScaled(b, 10_000) }

// BenchmarkIRSearch100k is the headline corpus-scale benchmark: selective
// queries over 100k+ passages, sparse vs dense in the same run. The
// acceptance bar is sparse ≥5× ns/op with allocs/op flat across scales.
func BenchmarkIRSearch100k(b *testing.B) { benchIRSearchScaled(b, 100_000) }

// BenchmarkAskCold measures the cold path of the serving engine: a
// cache-disabled engine answering an all-unique question workload, the
// traffic shape of diverse users whose questions never repeat — every op
// pays full question analysis, sparse IR retrieval and extraction. One op
// = the whole workload; the questions/sec metric is the cold-path
// throughput floor BENCH_PERF.json tracks (ask_cold_path).
func BenchmarkAskCold(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	questions := core.ColdQuestionWorkload(p)
	eng, err := engine.New(engine.Config{CacheSize: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range eng.AskAll(context.Background(), questions) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if r.Cached {
			b.Fatal("cache-disabled engine served a cached answer")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.AskAll(context.Background(), questions) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
}

// BenchmarkAskColdObserved is BenchmarkAskCold with observability at
// its default setting (stage timing on, slow-query log armed but never
// firing): the cold path stamps a span per question — cache lookup, NLP
// analyse, IR search, QA extract — and folds it into the registry's
// histograms. The acceptance bar is ns/op within 5% of ask_cold_path
// and +0 allocs/op (the record path is atomics into pre-registered
// cells; the span lives on the worker's stack); benchreport -check
// measures both arms interleaved and enforces the budget.
func BenchmarkAskColdObserved(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	questions := core.ColdQuestionWorkload(p)
	eng, err := engine.New(engine.Config{CacheSize: -1}, p.QA, nil, nil, p.Index)
	if err != nil {
		b.Fatal(err)
	}
	// Armed but out of reach: the threshold check runs every op, the
	// logging slow path never does — the serving default under load.
	eng.SetSlowQueryLog(time.Hour, func(string, ...any) {})
	for _, r := range eng.AskAll(context.Background(), questions) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.AskAll(context.Background(), questions) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
}

// BenchmarkAskColdSharded is BenchmarkAskCold over a sharded cluster:
// the same cache-disabled all-unique workload served scatter/gather
// across 1, 2 and 4 shards. Each question's retrieval scans only its
// shard's postings, so cold-path throughput should scale near-linearly
// with the shard count (BENCH_PERF.json, sharded_cold_path); the
// shards=1 arm isolates the federation overhead against BenchmarkAskCold.
func BenchmarkAskColdSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := dwqa.DefaultConfig()
			cfg.Engine.CacheSize = -1
			sp, err := dwqa.NewSharded(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			if err := sp.Integrate(); err != nil {
				b.Fatal(err)
			}
			questions := core.ColdQuestionWorkload(sp)
			eng, err := sp.Engine()
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range eng.AskAll(context.Background(), questions) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				if r.Cached {
					b.Fatal("cache-disabled engine served a cached answer")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.AskAll(context.Background(), questions) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
		})
	}
}

// benchSnapshotRestore benchmarks crash recovery against the cold boot
// it replaces: restoring the full engine state (warehouse columns, index
// postings, analysed sentences, ontology) from an encoded snapshot via
// bulk load, versus two rebuild baselines — refeed, the product's actual
// snapshotless boot (regenerate corpus pages, re-extract text, re-analyse
// and re-index every document, regenerate the warehouse), and reindex, a
// deliberately conservative variant that is handed the extracted text and
// resolved batches and pays only re-analysis/re-indexing/re-loading. All
// three arms are verified to reproduce the state byte-for-byte before
// timing. The acceptance bar at the 100k-passage scale is restore ≥10×
// faster than refeed (BENCH_PERF.json, store_snapshot_restore).
func benchSnapshotRestore(b *testing.B, targetPassages, targetRows int) {
	sb, err := core.PrepareStoreBenchmark(targetPassages, targetRows, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("passages: %d, fact rows: %d, members: %d, snapshot: %d bytes",
		sb.Passages, sb.Rows, sb.MemberCount, len(sb.SnapBytes))
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunSnapshotRestore(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("refeed", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunStoreRefeed(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("reindex", func(b *testing.B) {
		b.ReportAllocs()
		if err := core.RunStoreReindex(sb, b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSnapshotRestore10k is the CI-smoke scale of the durability
// benchmark.
func BenchmarkSnapshotRestore10k(b *testing.B) { benchSnapshotRestore(b, 10_000, 10_000) }

// BenchmarkSnapshotRestore100k is the headline durability benchmark:
// restart-in-seconds recovery at the 100k-passage / 100k-fact-row scale.
func BenchmarkSnapshotRestore100k(b *testing.B) { benchSnapshotRestore(b, 100_000, 100_000) }

// BenchmarkWALReplay measures the other half of recovery: re-applying a
// write-ahead log of committed feed batches (members + 1000-row fact
// batches at the 100k scale) to a fresh warehouse, including log open,
// scan and checksum verification per iteration.
func BenchmarkWALReplay(b *testing.B) {
	runner, records, err := core.PrepareWALReplayBenchmark(b.TempDir(), 100_000, 42, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("WAL records: %d", records)
	b.ReportAllocs()
	b.ResetTimer()
	if err := runner(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntegrationRunAll measures the full five-step integration.
func BenchmarkIntegrationRunAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := dwqa.New(dwqa.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// servingWorkload is the traffic-shaped question mix of the QA serving
// benchmarks: every scenario question, repeated — user traffic asks the
// same things over and over, which is exactly what the engine's request
// coalescing and answer cache exist for. Repeats are interleaved so a
// batch never presents the same question twice in a row.
func servingWorkload(p *dwqa.Pipeline, repeat int) []string {
	unique := p.WeatherQuestions()
	out := make([]string, 0, len(unique)*repeat)
	for r := 0; r < repeat; r++ {
		out = append(out, unique...)
	}
	return out
}

// BenchmarkAskThroughput compares one op = answering the whole serving
// workload sequentially (one Ask per question, the pre-engine library
// path) against the engine's AskAll with 8 workers, request coalescing
// and the answer cache. Both paths are verified to return identical
// answers in identical order before timing.
func BenchmarkAskThroughput(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	workload := servingWorkload(p, 8)
	eng, err := p.Engine()
	if err != nil {
		b.Fatal(err)
	}

	// Correctness gate: batch slots must match the sequential loop.
	batch := eng.AskAll(context.Background(), workload)
	for i, q := range workload {
		res, err := p.Ask(q)
		if err != nil || batch[i].Err != nil {
			b.Fatalf("slot %d: sequential err %v, batch err %v", i, err, batch[i].Err)
		}
		if res.Trace().Format() != batch[i].Result.Trace().Format() {
			b.Fatalf("slot %d (%q): batch result diverges from sequential Ask", i, q)
		}
	}

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range workload {
				res, err := p.Ask(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best == nil {
					b.Fatal("no answer")
				}
			}
		}
		b.ReportMetric(float64(len(workload))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
	})
	b.Run("engine8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.AskAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				if r.Result.Best == nil {
					b.Fatal("no answer")
				}
			}
		}
		b.ReportMetric(float64(len(workload))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
	})
}

// analyticWorkload is the OLAP half of the mixed serving benchmarks —
// the question shapes the NL→OLAP translator compiles (shared with
// cmd/benchreport through core.AnalyticQuestions so BENCH_PERF.json
// measures the same workload CI benchmarks).
func analyticWorkload() []string { return core.AnalyticQuestions() }

// BenchmarkNL2OLAPTranslate isolates the translator hot path: one op =
// classifying and compiling every analytic workload question into a
// validated plan (no execution).
func BenchmarkNL2OLAPTranslate(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []func() error{p.Step1DeriveOntology, p.Step2FeedOntology} {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	trans, err := p.Translator()
	if err != nil {
		b.Fatal(err)
	}
	questions := analyticWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range questions {
			if _, err := trans.Translate(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
}

// BenchmarkAskThroughputMixed is the mixed-workload variant of
// BenchmarkAskThroughput: factoid and analytic questions interleaved,
// sequential dispatch (classify, then translator.Answer or Ask) against
// the engine's AskAll. Both paths are verified to return identical
// answers in identical order before timing.
func BenchmarkAskThroughputMixed(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RunAll(); err != nil {
		b.Fatal(err)
	}
	workload := servingWorkload(p, 4)
	for r := 0; r < 4; r++ {
		workload = append(workload, analyticWorkload()...)
	}
	eng, err := p.Engine()
	if err != nil {
		b.Fatal(err)
	}
	trans, err := p.Translator()
	if err != nil {
		b.Fatal(err)
	}

	// The sequential mixed dispatch both benchmark arms must agree with.
	sequential := func(q string) (string, error) {
		ans, err := trans.Answer(q)
		switch {
		case err == nil:
			return ans.PlanString() + "\n" + ans.Result.Format(), nil
		case !errors.Is(err, nl2olap.ErrFactoid):
			return "", err
		}
		res, err := p.Ask(q)
		if err != nil {
			return "", err
		}
		return res.Trace().Format(), nil
	}
	renderBatch := func(r dwqa.AskResult) (string, error) {
		if r.Err != nil {
			return "", r.Err
		}
		if r.OLAP != nil {
			return r.OLAP.PlanString() + "\n" + r.OLAP.Result.Format(), nil
		}
		return r.Result.Trace().Format(), nil
	}

	// Correctness gate: batch slots must match the sequential dispatch.
	batch := eng.AskAll(context.Background(), workload)
	for i, q := range workload {
		want, err := sequential(q)
		if err != nil {
			b.Fatalf("slot %d (%q): sequential: %v", i, q, err)
		}
		got, err := renderBatch(batch[i])
		if err != nil {
			b.Fatalf("slot %d (%q): batch: %v", i, q, err)
		}
		if got != want {
			b.Fatalf("slot %d (%q): batch result diverges from sequential dispatch", i, q)
		}
	}

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range workload {
				if _, err := sequential(q); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(workload))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
	})
	b.Run("engine8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.AskAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				if r.Result == nil && r.OLAP == nil {
					b.Fatal("empty slot")
				}
			}
		}
		b.ReportMetric(float64(len(workload))*float64(b.N)/b.Elapsed().Seconds(), "questions/sec")
	})
}

// BenchmarkHarvestBatch compares one op = the full Step 5 feed run
// sequentially (harvest one question, load row-at-a-time) against the
// engine's concurrent harvest with batch warehouse loading. Each
// iteration uses a fresh loader so deduplication state never carries
// over.
func BenchmarkHarvestBatch(b *testing.B) {
	p, err := dwqa.New(dwqa.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []func() error{
		p.Step1DeriveOntology, p.Step2FeedOntology,
		p.Step3MergeUpperOntology, p.Step4TuneQA,
	} {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	questions := p.WeatherQuestions()
	harvester, err := p.NewHarvester()
	if err != nil {
		b.Fatal(err)
	}
	newLoader := func() *etl.Loader {
		l, err := etl.NewLoader(p.Ontology, p.Warehouse, "Weather", "City", "Date")
		if err != nil {
			b.Fatal(err)
		}
		return l
	}

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loader := newLoader()
			for _, q := range questions {
				answers, _, err := harvester.Harvest(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := loader.Load(answers); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(engine.Config{}, p.QA, harvester, newLoader(), p.Index)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := eng.HarvestAll(context.Background(), questions); err != nil {
				b.Fatal(err)
			}
		}
	})
}
