package seed_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwqa/internal/core"
	"dwqa/internal/seed"
	"dwqa/internal/store"
)

// stateBytes boots the durable pipeline in dir and returns its exported
// state encoded canonically — the byte string two convergent data
// directories must agree on.
func stateBytes(t *testing.T, dir string) []byte {
	t.Helper()
	p, _, err := core.OpenPipelineFS(core.Config{}, dir, store.OS())
	if err != nil {
		t.Fatalf("reopening %s: %v", dir, err)
	}
	defer p.Store().Close()
	state, err := p.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return store.EncodeState(state)
}

// TestSeederKillResume pins the tentpole invariant: a run killed in the
// worst-case window (batch committed to the WAL, checkpoint not yet
// written) and then resumed — twice — converges to the byte-identical
// state of an uninterrupted run with the same flags.
func TestSeederKillResume(t *testing.T) {
	const passages = 1500
	base := seed.Config{
		Passages:      passages,
		BatchPages:    16,
		SnapshotEvery: 2, // exercise periodic snapshots + WAL-tail recovery
		Seed:          42,
	}

	// Reference: one uninterrupted run.
	clean := base
	clean.DataDir = filepath.Join(t.TempDir(), "clean")
	cleanSum, err := seed.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if cleanSum.Passages < passages {
		t.Fatalf("uninterrupted run stopped at %d passages, want >= %d", cleanSum.Passages, passages)
	}

	// The same ingestion killed after 2 batches, resumed, killed again,
	// resumed to completion.
	killed := base
	killed.DataDir = filepath.Join(t.TempDir(), "killed")
	killed.CrashAfterBatches = 2
	if _, err := seed.Run(killed); !errors.Is(err, seed.ErrCrashed) {
		t.Fatalf("first crash run: got %v, want ErrCrashed", err)
	}
	sum, err := seed.Run(killed) // crashes again 2 batches further in
	if !errors.Is(err, seed.ErrCrashed) {
		t.Fatalf("second crash run: got %v, want ErrCrashed", err)
	}
	if !sum.Resumed {
		t.Fatal("second run did not resume from the checkpoint")
	}
	killed.CrashAfterBatches = 0
	sum, err = seed.Run(killed)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Resumed {
		t.Fatal("final run did not resume from the checkpoint")
	}
	if sum.Passages != cleanSum.Passages || sum.WALSeq == 0 {
		t.Fatalf("final run: %d passages (wal seq %d), uninterrupted had %d",
			sum.Passages, sum.WALSeq, cleanSum.Passages)
	}

	if got, want := stateBytes(t, killed.DataDir), stateBytes(t, clean.DataDir); string(got) != string(want) {
		t.Fatalf("kill-and-resume state diverged from uninterrupted run: %d vs %d encoded bytes", len(got), len(want))
	}
}

// TestSeederCheckpointFingerprintMismatch pins the resume guard: a
// checkpoint written under different stream geometry must not advance
// the cursor — the run rescans from zero (idempotently) instead of
// splicing two incompatible enumerations.
func TestSeederCheckpointFingerprintMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	cfg := seed.Config{DataDir: dir, MaxPages: 32, BatchPages: 16, SnapshotEvery: -1, Seed: 42}
	if _, err := seed.Run(cfg); err != nil {
		t.Fatal(err)
	}

	cfg.BatchPages = 8 // different batch geometry → different fingerprint
	cfg.MaxPages = 16
	sum, err := seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed {
		t.Fatal("run resumed from a checkpoint with a mismatched fingerprint")
	}
	// The rescan is idempotent: the 16 re-streamed pages are all already
	// ingested.
	if sum.DocsAdded != 0 || sum.Loaded != 0 {
		t.Fatalf("rescan re-ingested data: %d docs, %d rows", sum.DocsAdded, sum.Loaded)
	}
}

// TestSeederJSONL pins the file-corpus mode end to end: ingest, verify
// counts, and re-run the same file — which must resume past the end and
// ingest nothing.
func TestSeederJSONL(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.jsonl")
	lines := ""
	for i := 0; i < 5; i++ {
		lines += fmt.Sprintf(`{"url":"http://corpus.test/p%d","text":"In Testville the temperature was %d degrees.","records":[{"city":"testville","year":2004,"month":1,"day":%d,"temp_c":%d}]}`+"\n",
			i, 10+i, i+1, 10+i)
	}
	if err := os.WriteFile(corpus, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := seed.Config{DataDir: filepath.Join(dir, "data"), JSONL: corpus, BatchPages: 2, SnapshotEvery: -1}
	sum, err := seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DocsAdded != 5 || sum.Loaded != 5 || sum.Skipped != 0 {
		t.Fatalf("first run: %d docs, %d rows, %d deduped; want 5, 5, 0", sum.DocsAdded, sum.Loaded, sum.Skipped)
	}

	sum, err = seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Resumed {
		t.Fatal("second run over the same file did not resume")
	}
	if sum.PagesSeen != 0 || sum.DocsAdded != 0 || sum.Loaded != 0 {
		t.Fatalf("second run re-ingested: %d pages, %d docs, %d rows", sum.PagesSeen, sum.DocsAdded, sum.Loaded)
	}
}

// TestSeederJSONLRewrittenSource pins the in-place-edit guard: rewriting
// the JSONL source to the same byte length (so neither the base name nor
// the size changes — only the content hash can catch it) must invalidate
// the checkpoint and restart the scan from page zero, never resume a
// cursor positioned in a stream that no longer exists.
func TestSeederJSONLRewrittenSource(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.jsonl")
	page := func(i, temp int) string {
		return fmt.Sprintf(`{"url":"http://corpus.test/p%d","text":"In Testville the temperature was %d degrees.","records":[{"city":"testville","year":2004,"month":1,"day":%d,"temp_c":%d}]}`+"\n",
			i, temp, i+1, temp)
	}
	var lines string
	for i := 0; i < 5; i++ {
		lines += page(i, 10+i)
	}
	if err := os.WriteFile(corpus, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := seed.Config{DataDir: filepath.Join(dir, "data"), JSONL: corpus, BatchPages: 2, SnapshotEvery: -1}
	if _, err := seed.Run(cfg); err != nil {
		t.Fatal(err)
	}
	fpBefore, _, _, ok, err := seed.ReadCheckpointForTest(store.OS(), cfg.DataDir)
	if err != nil || !ok {
		t.Fatalf("reading checkpoint back: ok=%v err=%v", ok, err)
	}

	// Rewrite every line in place: 20..24 replaces 10..14, byte-for-byte
	// the same length, so the file's name and size are unchanged.
	var edited string
	for i := 0; i < 5; i++ {
		edited += page(i, 20+i)
	}
	if len(edited) != len(lines) {
		t.Fatalf("edited corpus is %d bytes, original %d — the test needs a same-size rewrite", len(edited), len(lines))
	}
	if err := os.WriteFile(corpus, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	sum, err := seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed {
		t.Fatal("run resumed a checkpoint over a rewritten source")
	}
	if sum.StartPages != 0 || sum.PagesSeen != 5 {
		t.Fatalf("rescan started at page %d and saw %d pages; want a full scan from 0 over 5", sum.StartPages, sum.PagesSeen)
	}
	fpAfter, _, _, ok, err := seed.ReadCheckpointForTest(store.OS(), cfg.DataDir)
	if err != nil || !ok {
		t.Fatalf("reading checkpoint back: ok=%v err=%v", ok, err)
	}
	if fpBefore == fpAfter {
		t.Fatal("fingerprint unchanged by a same-size content rewrite — the hash is not in it")
	}
}

// TestSeederMaxPagesCapsMidBatch pins the page budget: a cap that is
// not a multiple of the batch size truncates the final batch instead of
// overshooting.
func TestSeederMaxPagesCapsMidBatch(t *testing.T) {
	cfg := seed.Config{
		DataDir:  filepath.Join(t.TempDir(), "data"),
		MaxPages: 20, BatchPages: 16, SnapshotEvery: -1, Seed: 42,
		ProgressEvery: 1, Logf: t.Logf, // every batch logs a progress line
	}
	sum, err := seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.PagesSeen != 20 {
		t.Fatalf("ingested %d pages, want exactly the 20-page cap", sum.PagesSeen)
	}
}

// TestSeederDistrustsCheckpointAheadOfWAL pins the other resume guard:
// a checkpoint claiming a WAL sequence recovery never replayed (a lost
// WAL tail) must not advance the cursor.
func TestSeederDistrustsCheckpointAheadOfWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	cfg := seed.Config{DataDir: dir, MaxPages: 16, BatchPages: 16, SnapshotEvery: -1, Seed: 42}
	if _, err := seed.Run(cfg); err != nil {
		t.Fatal(err)
	}

	fp, pages, _, ok, err := seed.ReadCheckpointForTest(store.OS(), dir)
	if err != nil || !ok {
		t.Fatalf("reading checkpoint back: ok=%v err=%v", ok, err)
	}
	if err := seed.WriteCheckpointForTest(store.OS(), dir, fp, pages, 1<<40); err != nil {
		t.Fatal(err)
	}
	cfg.MaxPages = 8
	cfg.BatchPages = 16 // same fingerprint geometry
	sum, err := seed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed {
		t.Fatal("run trusted a checkpoint ahead of the recovered WAL")
	}
	if sum.DocsAdded != 0 {
		t.Fatalf("rescan re-ingested %d docs", sum.DocsAdded)
	}
}

// TestCheckpointWriteFaults pins the checkpoint's failure atomicity: a
// fault at any step of the temp-write-sync-rename-syncdir protocol
// fails the write and leaves the previous checkpoint readable.
func TestCheckpointWriteFaults(t *testing.T) {
	for _, fault := range []store.Fault{
		{Op: store.OpOpen, Nth: 1},   // CreateTemp refused
		{Op: store.OpWrite, Nth: 1},  // payload write fails
		{Op: store.OpSync, Nth: 1},   // temp-file fsync fails
		{Op: store.OpRename, Nth: 1}, // publish rename fails
		{Op: store.OpSync, Nth: 2},   // directory sync fails
	} {
		t.Run(fault.Op.String(), func(t *testing.T) {
			dir := t.TempDir()
			ffs := store.NewFaultFS(store.OS())
			if err := seed.WriteCheckpointForTest(ffs, dir, "stream", 64, 7); err != nil {
				t.Fatalf("disarmed write failed: %v", err)
			}

			ffs.Arm(fault)
			err := seed.WriteCheckpointForTest(ffs, dir, "stream", 128, 9)
			if fault.Op == store.OpSync && fault.Nth == 2 {
				// The rename already published; only the directory sync
				// failed. The error must still surface.
				if err == nil {
					t.Fatal("directory-sync failure was swallowed")
				}
				return
			}
			if err == nil {
				t.Fatalf("checkpoint write survived injected %s fault", fault.Op)
			}
			ffs.Disarm()
			fp, pages, seq, ok, rerr := seed.ReadCheckpointForTest(ffs, dir)
			if rerr != nil || !ok {
				t.Fatalf("previous checkpoint unreadable after failed write: ok=%v err=%v", ok, rerr)
			}
			if fp != "stream" || pages != 64 || seq != 7 {
				t.Fatalf("failed write clobbered the checkpoint: %q %d %d", fp, pages, seq)
			}
		})
	}
}

// TestCheckpointCorruptionFallsBackToRescan pins readCheckpoint's
// contract: garbage, invalid JSON or a negative cursor mean "no
// checkpoint", never an error.
func TestCheckpointCorruptionFallsBackToRescan(t *testing.T) {
	for name, payload := range map[string]string{
		"garbage":        "\x00\xff not json",
		"negative-pages": `{"fingerprint":"s","pages":-4,"wal_seq":1}`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, seed.CheckpointFile), []byte(payload), 0o600); err != nil {
				t.Fatal(err)
			}
			_, _, _, ok, err := seed.ReadCheckpointForTest(store.OS(), dir)
			if err != nil {
				t.Fatalf("corruption surfaced as an error: %v", err)
			}
			if ok {
				t.Fatal("corrupt checkpoint was accepted")
			}
		})
	}
	if _, _, _, ok, err := seed.ReadCheckpointForTest(store.OS(), t.TempDir()); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v, want absent and nil", ok, err)
	}
}

// TestSeederJSONLErrors pins the file-mode failure paths: a missing
// corpus file and a malformed line both fail loudly with the file and
// line identified, never half-ingest silently.
func TestSeederJSONLErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := seed.Config{DataDir: filepath.Join(dir, "data"), JSONL: filepath.Join(dir, "missing.jsonl"), SnapshotEvery: -1}
	if _, err := seed.Run(cfg); err == nil {
		t.Fatal("run over a missing JSONL file succeeded")
	}

	corpus := filepath.Join(dir, "bad.jsonl")
	content := `{"url":"http://corpus.test/ok","text":"Fine."}` + "\n" + `{"url": not-json` + "\n"
	if err := os.WriteFile(corpus, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.JSONL = corpus
	cfg.DataDir = filepath.Join(dir, "data2")
	_, err := seed.Run(cfg)
	if err == nil {
		t.Fatal("run over a malformed JSONL line succeeded")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not identify the bad line: %v", err)
	}
}

// TestSeederGeneratedModeNeedsTarget pins the config guard: generated
// mode with neither a passage target nor a page cap would stream
// forever, so Run refuses it up front.
func TestSeederGeneratedModeNeedsTarget(t *testing.T) {
	if _, err := seed.Run(seed.Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("generated mode without a stop condition was accepted")
	}
}

// TestSeederKillResume50k is the CI smoke: a 50k-passage corpus killed
// mid-ingestion and resumed must converge byte-identically to an
// uninterrupted run. Gated behind SEEDER_SMOKE=1 — it moves ~3k pages
// through the full durable path twice.
func TestSeederKillResume50k(t *testing.T) {
	if os.Getenv("SEEDER_SMOKE") != "1" {
		t.Skip("set SEEDER_SMOKE=1 to run the 50k-passage seeder smoke")
	}
	const passages = 50_000
	base := seed.Config{Passages: passages, Seed: 42, Logf: t.Logf, ProgressEvery: 10}

	clean := base
	clean.DataDir = filepath.Join(t.TempDir(), "clean")
	cleanSum, err := seed.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uninterrupted: %d pages, %d passages, %v", cleanSum.PagesSeen, cleanSum.Passages, cleanSum.Elapsed)

	killed := base
	killed.DataDir = filepath.Join(t.TempDir(), "killed")
	killed.CrashAfterBatches = 25 // roughly mid-run at the default batch size
	if _, err := seed.Run(killed); !errors.Is(err, seed.ErrCrashed) {
		t.Fatalf("crash run: got %v, want ErrCrashed", err)
	}
	killed.CrashAfterBatches = 0
	sum, err := seed.Run(killed)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Resumed {
		t.Fatal("run after the kill did not resume")
	}
	t.Logf("resumed at page %d: %d more pages, %d passages, %v", sum.StartPages, sum.PagesSeen, sum.Passages, sum.Elapsed)

	if got, want := stateBytes(t, killed.DataDir), stateBytes(t, clean.DataDir); string(got) != string(want) {
		t.Fatalf("kill-and-resume state diverged from uninterrupted run: %d vs %d encoded bytes", len(got), len(want))
	}
}
